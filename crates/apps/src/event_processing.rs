//! Event Processing — the IoT-inspired event-processing system of Yussupov
//! et al. (7 functions).
//!
//! Sensor data is ingested through API Gateway and SNS/SQS, formatted by
//! three small formatter functions, and persisted into **Aurora** — another
//! service the training segments never used. These are the fastest
//! functions of the evaluation, which is precisely why the paper's relative
//! errors are largest here (tiny absolute times amplify relative error).

use crate::AppFunction;
use sizeless_platform::{ResourceProfile, ServiceCall, ServiceKind, Stage};

/// The seven event-processing functions.
pub fn functions() -> Vec<AppFunction> {
    vec![
        AppFunction {
            name: "EventInserter",
            profile: ResourceProfile::builder("EventInserter")
                .stage(Stage::cpu("validate", 3.0))
                .stage(Stage::service(
                    "insert",
                    ServiceCall::new(ServiceKind::Aurora, 1, 4.0),
                ))
                .build(),
        },
        AppFunction {
            name: "FormatForecast",
            profile: ResourceProfile::builder("FormatForecast")
                .stage(
                    Stage::cpu("format", 4.5)
                        .with_alloc_churn(2.0)
                        .with_working_set(6.0),
                )
                .stage(Stage::service(
                    "forward",
                    ServiceCall::new(ServiceKind::Sqs, 1, 2.0),
                ))
                .build(),
        },
        AppFunction {
            name: "FormatState",
            profile: ResourceProfile::builder("FormatState")
                .stage(Stage::cpu("format", 3.6).with_alloc_churn(1.5))
                .stage(Stage::service(
                    "forward",
                    ServiceCall::new(ServiceKind::Sqs, 1, 1.5),
                ))
                .build(),
        },
        AppFunction {
            name: "FormatTemp",
            profile: ResourceProfile::builder("FormatTemp")
                .stage(Stage::cpu("format", 3.1).with_alloc_churn(1.2))
                .stage(Stage::service(
                    "forward",
                    ServiceCall::new(ServiceKind::Sqs, 1, 1.5),
                ))
                .build(),
        },
        AppFunction {
            name: "GetLatestEvents",
            profile: ResourceProfile::builder("GetLatestEvents")
                .stage(Stage::cpu("build-query", 2.0))
                .stage(Stage::service(
                    "query",
                    ServiceCall::new(ServiceKind::Aurora, 2, 18.0),
                ))
                .build(),
        },
        AppFunction {
            name: "ListAllEvents",
            profile: ResourceProfile::builder("ListAllEvents")
                .stage(Stage::service(
                    "scan",
                    ServiceCall::new(ServiceKind::Aurora, 1, 180.0),
                ))
                .stage(
                    Stage::cpu("serialize", 6.0)
                        .with_working_set(42.0)
                        .with_alloc_churn(10.0),
                )
                .build(),
        },
        AppFunction {
            name: "IngestEvent",
            profile: ResourceProfile::builder("IngestEvent")
                .stage(Stage::cpu("parse", 5.0).with_working_set(8.0))
                .stage(Stage::service(
                    "fanout",
                    ServiceCall::new(ServiceKind::Sns, 1, 2.0),
                ))
                .stage(Stage::service(
                    "queue",
                    ServiceCall::new(ServiceKind::Sqs, 1, 2.0),
                ))
                .build(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizeless_platform::{MemorySize, Platform};

    #[test]
    fn has_seven_functions() {
        assert_eq!(functions().len(), 7);
    }

    #[test]
    fn functions_are_fast_at_large_sizes() {
        // "Compared to the other applications, the functions of this
        // application exhibit very fast execution times."
        let platform = Platform::aws_like();
        for f in functions() {
            let t = platform.expected_duration_ms(&f.profile, MemorySize::MB_2048);
            assert!(t < 120.0, "{}: {t}", f.name);
        }
    }

    #[test]
    fn formatters_are_cpu_bound() {
        let platform = Platform::aws_like();
        let fns = functions();
        let fmt = fns.iter().find(|f| f.name == "FormatForecast").unwrap();
        let t128 = platform.expected_duration_ms(&fmt.profile, MemorySize::MB_128);
        let t512 = platform.expected_duration_ms(&fmt.profile, MemorySize::MB_512);
        assert!(t128 > 2.0 * t512);
    }
}
