//! Case-study measurement campaigns.
//!
//! The paper measures every case-study function at all six memory sizes
//! with **ten repetitions** to account for cloud performance variability.
//! [`measure_app`] reproduces that: per (function, size) it runs the
//! repetitions, averages the summaries, and pools all invocation samples
//! into one [`MetricVector`] per size (the model input).

use crate::{AppFunction, CaseStudyApp};
use serde::{Deserialize, Serialize};
use sizeless_platform::{MemorySize, Platform};
use sizeless_telemetry::MetricVector;
use sizeless_workload::{measure_parallel, ExperimentConfig};

/// How to measure an application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementPlan {
    /// Request rate per function, rps.
    pub rps: f64,
    /// Duration per repetition, ms.
    pub duration_ms: f64,
    /// Measurement repetitions (paper: 10).
    pub repetitions: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl MeasurementPlan {
    /// The paper's plan for an application (its workload × 10 repetitions).
    pub fn paper(app: CaseStudyApp) -> Self {
        let (rps, duration_ms) = app.workload();
        MeasurementPlan {
            rps,
            duration_ms,
            repetitions: 10,
            seed: 0,
            threads: 8,
        }
    }

    /// A scaled-down plan that keeps the app's workload *shape* but shrinks
    /// duration and repetitions by `factor` (≥ 1).
    pub fn scaled(app: CaseStudyApp, factor: f64) -> Self {
        assert!(factor >= 1.0, "factor must be at least 1");
        let paper = Self::paper(app);
        MeasurementPlan {
            duration_ms: (paper.duration_ms / factor).max(2_000.0),
            repetitions: ((paper.repetitions as f64 / factor).ceil() as usize).max(2),
            rps: paper.rps.min(40.0),
            ..paper
        }
    }

    /// A tiny plan for unit tests.
    pub fn quick() -> Self {
        MeasurementPlan {
            rps: 12.0,
            duration_ms: 3_000.0,
            repetitions: 2,
            seed: 0,
            threads: 4,
        }
    }
}

/// Measurements of one function across all six sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionMeasurement {
    /// Function name.
    pub name: String,
    /// Pooled metric vector per standard size.
    pub metrics: Vec<MetricVector>,
    /// Mean execution time per standard size (averaged over repetitions), ms.
    pub mean_execution_ms: Vec<f64>,
    /// Mean cost per invocation per standard size, USD.
    pub mean_cost_usd: Vec<f64>,
}

impl FunctionMeasurement {
    /// Pooled metric vector at a standard size.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a standard size.
    pub fn metrics_at(&self, m: MemorySize) -> &MetricVector {
        // lint: allow(panic002) reason="documented # Panics contract: m must be one of the six standard sizes"
        &self.metrics[m.standard_index().expect("standard size")]
    }

    /// Mean execution time at a standard size, ms.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a standard size.
    pub fn execution_ms_at(&self, m: MemorySize) -> f64 {
        // lint: allow(panic002) reason="documented # Panics contract: m must be one of the six standard sizes"
        self.mean_execution_ms[m.standard_index().expect("standard size")]
    }

    /// Mean cost per invocation at a standard size, USD.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a standard size.
    pub fn cost_usd_at(&self, m: MemorySize) -> f64 {
        // lint: allow(panic002) reason="documented # Panics contract: m must be one of the six standard sizes"
        self.mean_cost_usd[m.standard_index().expect("standard size")]
    }

    /// The measured-optimal ("ground truth") times as a size→ms map.
    pub fn times_map(&self) -> std::collections::BTreeMap<MemorySize, f64> {
        MemorySize::STANDARD
            .iter()
            .map(|&m| (m, self.execution_ms_at(m)))
            .collect()
    }
}

/// Measurements of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMeasurement {
    /// Which application.
    pub app_name: String,
    /// One entry per function.
    pub functions: Vec<FunctionMeasurement>,
}

impl AppMeasurement {
    /// Finds a function's measurement by name.
    pub fn function(&self, name: &str) -> Option<&FunctionMeasurement> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Measures every function of `app` at every standard size with the given
/// plan.
pub fn measure_app(platform: &Platform, app: CaseStudyApp, plan: &MeasurementPlan) -> AppMeasurement {
    let functions = app.functions();
    measure_functions(platform, app.name(), &functions, plan)
}

/// Measures an explicit list of functions (used by tests and ablations).
pub fn measure_functions(
    platform: &Platform,
    app_name: &str,
    functions: &[AppFunction],
    plan: &MeasurementPlan,
) -> AppMeasurement {
    // Jobs: function × size × repetition, flattened for the parallel pool.
    let mut jobs = Vec::new();
    for f in functions {
        for &m in &MemorySize::STANDARD {
            for _rep in 0..plan.repetitions {
                jobs.push((&f.profile, m));
            }
        }
    }
    // Each repetition needs an independent stream: seed it by job index.
    // measure_parallel seeds per (function, size) from the config seed, so
    // we run one call per repetition offset instead.
    let mut per_rep: Vec<Vec<sizeless_workload::Measurement>> =
        Vec::with_capacity(plan.repetitions);
    let base_jobs: Vec<(&sizeless_platform::ResourceProfile, MemorySize)> = functions
        .iter()
        .flat_map(|f| MemorySize::STANDARD.iter().map(move |&m| (&f.profile, m)))
        .collect();
    for rep in 0..plan.repetitions {
        let cfg = ExperimentConfig {
            duration_ms: plan.duration_ms,
            rps: plan.rps,
            seed: plan.seed.wrapping_add(1 + rep as u64),
        };
        per_rep.push(measure_parallel(platform, &base_jobs, &cfg, plan.threads));
    }

    let sizes = MemorySize::STANDARD.len();
    let functions_out = functions
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let mut metrics = Vec::with_capacity(sizes);
            let mut mean_exec = Vec::with_capacity(sizes);
            let mut mean_cost = Vec::with_capacity(sizes);
            for si in 0..sizes {
                let idx = fi * sizes + si;
                // Pool all repetitions' samples for the metric vector.
                let pooled: Vec<&sizeless_telemetry::InvocationSample> = per_rep
                    .iter()
                    .flat_map(|rep| rep[idx].store.samples())
                    .collect();
                metrics.push(MetricVector::from_samples(pooled));
                mean_exec.push(
                    per_rep.iter().map(|r| r[idx].summary.mean_execution_ms).sum::<f64>()
                        / plan.repetitions as f64,
                );
                mean_cost.push(
                    per_rep.iter().map(|r| r[idx].summary.mean_cost_usd).sum::<f64>()
                        / plan.repetitions as f64,
                );
            }
            FunctionMeasurement {
                name: f.name.to_string(),
                metrics,
                mean_execution_ms: mean_exec,
                mean_cost_usd: mean_cost,
            }
        })
        .collect();

    AppMeasurement {
        app_name: app_name.to_string(),
        functions: functions_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_every_function_and_size() {
        let platform = Platform::aws_like();
        let m = measure_app(
            &platform,
            CaseStudyApp::FacialRecognition,
            &MeasurementPlan::quick(),
        );
        assert_eq!(m.app_name, "Facial Recognition");
        assert_eq!(m.functions.len(), 5);
        for f in &m.functions {
            assert_eq!(f.metrics.len(), 6);
            assert_eq!(f.mean_execution_ms.len(), 6);
            assert!(f.mean_execution_ms.iter().all(|&t| t > 0.0));
            assert!(f.mean_cost_usd.iter().all(|&c| c > 0.0));
            assert_eq!(f.times_map().len(), 6);
        }
        assert!(m.function("PersistMetadata").is_some());
        assert!(m.function("NoSuchFunction").is_none());
    }

    #[test]
    fn measurement_is_deterministic() {
        let platform = Platform::aws_like();
        let a = measure_app(
            &platform,
            CaseStudyApp::EventProcessing,
            &MeasurementPlan::quick(),
        );
        let b = measure_app(
            &platform,
            CaseStudyApp::EventProcessing,
            &MeasurementPlan::quick(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_plan_shrinks_but_stays_valid() {
        let p = MeasurementPlan::scaled(CaseStudyApp::AirlineBooking, 20.0);
        assert!(p.duration_ms >= 2_000.0);
        assert!(p.repetitions >= 2);
        assert!(p.rps <= 40.0);
    }

    #[test]
    fn cpu_bound_functions_cost_less_at_their_sweet_spot() {
        // Sanity: measured cost at 128 MB for a CPU-bound airline function
        // is not lower than at 512 MB (time halving compensates price).
        let platform = Platform::aws_like();
        let m = measure_app(
            &platform,
            CaseStudyApp::AirlineBooking,
            &MeasurementPlan::quick(),
        );
        let notify = m.function("NotifyBooking").unwrap();
        let c128 = notify.cost_usd_at(MemorySize::MB_128);
        let c512 = notify.cost_usd_at(MemorySize::MB_512);
        assert!(c512 < c128 * 3.0);
    }
}
