//! Hello Retail — Nordstrom's serverless, event-sourced product catalog
//! (7 functions; winner of the inaugural Serverlessconf architecture
//! competition).
//!
//! New products flow through a **Kinesis** event stream; a photographer
//! workflow acquires product images, which `PhotoProcessor` normalizes —
//! the parallel image work that gives the paper its largest Hello-Retail
//! prediction errors.

use crate::AppFunction;
use sizeless_platform::{ResourceProfile, ServiceCall, ServiceKind, Stage};

/// The seven hello-retail functions.
pub fn functions() -> Vec<AppFunction> {
    vec![
        AppFunction {
            name: "EventWriter",
            profile: ResourceProfile::builder("EventWriter")
                .stage(
                    Stage::cpu("serialize-event", 8.0)
                        .with_working_set(10.0)
                        .with_alloc_churn(3.0),
                )
                .stage(Stage::service(
                    "put-record",
                    ServiceCall::new(ServiceKind::Kinesis, 1, 4.0),
                ))
                .build(),
        },
        AppFunction {
            name: "PhotoAssign",
            profile: ResourceProfile::builder("PhotoAssign")
                .stage(Stage::cpu("pick-photographer", 0.9))
                .stage(Stage::service(
                    "record-assignment",
                    ServiceCall::new(ServiceKind::DynamoDb, 1, 3.0),
                ))
                .stage(Stage::service(
                    "notify",
                    ServiceCall::new(ServiceKind::Sns, 1, 1.0),
                ))
                .build(),
        },
        AppFunction {
            name: "PhotoProcessor",
            profile: ResourceProfile::builder("PhotoProcessor")
                .stage(Stage::service(
                    "fetch-photo",
                    ServiceCall::new(ServiceKind::S3, 1, 2000.0),
                ))
                .stage(
                    Stage::cpu_parallel("normalize", 65.0, 2.9)
                        .with_working_set(60.0)
                        .with_alloc_churn(30.0),
                )
                .stage(Stage::service(
                    "store-processed",
                    ServiceCall::new(ServiceKind::S3, 1, 500.0),
                ))
                .build(),
        },
        AppFunction {
            name: "PhotoReceive",
            profile: ResourceProfile::builder("PhotoReceive")
                .stage(Stage::service(
                    "gateway-hop",
                    ServiceCall::new(ServiceKind::ApiGateway, 1, 2.0),
                ))
                .stage(Stage::cpu("validate-upload", 3.0))
                .stage(Stage::service(
                    "record-receipt",
                    ServiceCall::new(ServiceKind::DynamoDb, 1, 4.0),
                ))
                .build(),
        },
        AppFunction {
            name: "PhotoReport",
            profile: ResourceProfile::builder("PhotoReport")
                .stage(Stage::cpu("build-report", 4.0).with_alloc_churn(2.0))
                .stage(Stage::service(
                    "read-status",
                    ServiceCall::new(ServiceKind::DynamoDb, 2, 8.0),
                ))
                .stage(Stage::service(
                    "publish-report",
                    ServiceCall::new(ServiceKind::Sns, 1, 2.0),
                ))
                .build(),
        },
        AppFunction {
            name: "ProductCatalogApi",
            profile: ResourceProfile::builder("ProductCatalogApi")
                .stage(
                    Stage::cpu("render-page", 5.5)
                        .with_working_set(38.0)
                        .with_alloc_churn(8.0),
                )
                .stage(Stage::service(
                    "read-catalog",
                    ServiceCall::new(ServiceKind::DynamoDb, 1, 20.0),
                ))
                .build(),
        },
        AppFunction {
            name: "ProductCatalogBuilder",
            profile: ResourceProfile::builder("ProductCatalogBuilder")
                .stage(Stage::service(
                    "read-stream",
                    ServiceCall::new(ServiceKind::Kinesis, 1, 12.0),
                ))
                .stage(
                    Stage::cpu("fold-events", 7.5)
                        .with_working_set(24.0)
                        .with_alloc_churn(6.0),
                )
                .stage(Stage::service(
                    "update-views",
                    ServiceCall::new(ServiceKind::DynamoDb, 2, 10.0),
                ))
                .build(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizeless_platform::{MemorySize, Platform};

    #[test]
    fn has_seven_functions() {
        assert_eq!(functions().len(), 7);
    }

    #[test]
    fn photo_assign_is_nearly_flat() {
        // The paper's Table 7 reports ≤1.4% error for PhotoAssign at every
        // size — a service-bound function with negligible CPU.
        let platform = Platform::aws_like();
        let fns = functions();
        let assign = fns.iter().find(|f| f.name == "PhotoAssign").unwrap();
        let t128 = platform.expected_duration_ms(&assign.profile, MemorySize::MB_128);
        let t3008 = platform.expected_duration_ms(&assign.profile, MemorySize::MB_3008);
        assert!((t128 - t3008) / t128 < 0.45, "{t128} vs {t3008}");
    }

    #[test]
    fn photo_processor_is_the_heaviest_function() {
        let platform = Platform::aws_like();
        let fns = functions();
        let t_proc = platform.expected_duration_ms(
            &fns.iter().find(|f| f.name == "PhotoProcessor").unwrap().profile,
            MemorySize::MB_128,
        );
        for f in &fns {
            let t = platform.expected_duration_ms(&f.profile, MemorySize::MB_128);
            assert!(t <= t_proc, "{} ({t}) heavier than PhotoProcessor", f.name);
        }
    }
}
