//! Airline Booking — the AWS Build On Serverless production-grade
//! full-stack application (8 functions).
//!
//! Customers search flights, book, pay by credit card, and earn loyalty
//! points. The app combines S3, SNS, Step Functions, API Gateway, DynamoDB
//! tables, and an **external payment provider** whose latency dominates the
//! payment path.

use crate::AppFunction;
use sizeless_platform::{ResourceProfile, ServiceCall, ServiceKind, Stage};

/// The eight airline-booking functions.
pub fn functions() -> Vec<AppFunction> {
    vec![
        AppFunction {
            name: "IngestLoyalty",
            profile: ResourceProfile::builder("IngestLoyalty")
                .stage(
                    Stage::cpu("parse-event", 9.0)
                        .with_alloc_churn(4.0)
                        .with_working_set(10.0),
                )
                .stage(Stage::service(
                    "write-points",
                    ServiceCall::new(ServiceKind::DynamoDb, 2, 6.0),
                ))
                .build(),
        },
        AppFunction {
            name: "CaptureCharge",
            profile: ResourceProfile::builder("CaptureCharge")
                .stage(Stage::cpu("validate", 6.0).with_working_set(8.0))
                .stage(Stage::service(
                    "capture",
                    ServiceCall::new(ServiceKind::ExternalPayment, 1, 3.0),
                ))
                .build(),
        },
        AppFunction {
            name: "CreateCharge",
            profile: ResourceProfile::builder("CreateCharge")
                .stage(
                    Stage::cpu("tokenize", 14.0)
                        .with_working_set(30.0)
                        .with_alloc_churn(8.0),
                )
                .stage(Stage::service(
                    "create",
                    ServiceCall::new(ServiceKind::ExternalPayment, 1, 4.0),
                ))
                .build(),
        },
        AppFunction {
            name: "CollectPayment",
            profile: ResourceProfile::builder("CollectPayment")
                .stage(Stage::service(
                    "workflow-step",
                    ServiceCall::new(ServiceKind::StepFunctions, 1, 2.0),
                ))
                .stage(Stage::cpu("orchestrate", 8.0).with_working_set(12.0))
                .stage(Stage::service(
                    "collect",
                    ServiceCall::new(ServiceKind::ExternalPayment, 1, 3.0),
                ))
                .build(),
        },
        AppFunction {
            name: "ConfirmBooking",
            profile: ResourceProfile::builder("ConfirmBooking")
                .stage(Stage::cpu("finalize", 7.0).with_alloc_churn(3.0))
                .stage(Stage::service(
                    "update-booking",
                    ServiceCall::new(ServiceKind::DynamoDb, 2, 8.0),
                ))
                .stage(Stage::service(
                    "announce",
                    ServiceCall::new(ServiceKind::Sns, 1, 1.5),
                ))
                .build(),
        },
        AppFunction {
            name: "GetLoyalty",
            profile: ResourceProfile::builder("GetLoyalty")
                .stage(
                    Stage::cpu("aggregate-points", 5.0)
                        .with_working_set(70.0)
                        .with_alloc_churn(12.0),
                )
                .stage(Stage::service(
                    "read-points",
                    ServiceCall::new(ServiceKind::DynamoDb, 1, 24.0),
                ))
                .build(),
        },
        AppFunction {
            name: "NotifyBooking",
            profile: ResourceProfile::builder("NotifyBooking")
                .stage(Stage::cpu("render-message", 8.0).with_working_set(6.0))
                .stage(Stage::service(
                    "publish",
                    ServiceCall::new(ServiceKind::Sns, 1, 2.0),
                ))
                .build(),
        },
        AppFunction {
            name: "ReserveBooking",
            profile: ResourceProfile::builder("ReserveBooking")
                .stage(
                    Stage::cpu("build-reservation", 12.0)
                        .with_working_set(16.0)
                        .with_alloc_churn(6.0),
                )
                .stage(Stage::service(
                    "reserve",
                    ServiceCall::new(ServiceKind::DynamoDb, 2, 10.0),
                ))
                .build(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizeless_platform::{MemorySize, Platform};

    #[test]
    fn has_eight_functions_with_paper_names() {
        let fns = functions();
        assert_eq!(fns.len(), 8);
        let names: Vec<&str> = fns.iter().map(|f| f.name).collect();
        for expect in [
            "IngestLoyalty",
            "CaptureCharge",
            "CreateCharge",
            "CollectPayment",
            "ConfirmBooking",
            "GetLoyalty",
            "NotifyBooking",
            "ReserveBooking",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn payment_functions_are_dominated_by_the_provider() {
        let platform = Platform::aws_like();
        let fns = functions();
        let capture = fns.iter().find(|f| f.name == "CaptureCharge").unwrap();
        // At large sizes CPU vanishes; the ~240 ms payment latency stays.
        let t = platform.expected_duration_ms(&capture.profile, MemorySize::MB_3008);
        assert!(t > 150.0, "t={t}");
    }

    #[test]
    fn notify_booking_is_light_and_cpu_sensitive() {
        let platform = Platform::aws_like();
        let fns = functions();
        let notify = fns.iter().find(|f| f.name == "NotifyBooking").unwrap();
        let t128 = platform.expected_duration_ms(&notify.profile, MemorySize::MB_128);
        let t1024 = platform.expected_duration_ms(&notify.profile, MemorySize::MB_1024);
        assert!(t128 > 2.0 * t1024, "{t128} vs {t1024}");
        assert!(t128 < 300.0);
    }
}
