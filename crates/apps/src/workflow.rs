//! Application-level workflows: end-to-end request latency and cost.
//!
//! The paper's workloads "sequentially access all application features" —
//! one user request traverses several functions (via API Gateway, queues,
//! or Step Functions). Function-level optimization is what Sizeless does;
//! this module measures what the *user* sees: the end-to-end latency and
//! per-request cost of the whole chain, before and after adopting the
//! per-function recommendations.

use crate::CaseStudyApp;
use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;
use sizeless_platform::{FunctionConfig, MemorySize, Platform};
use std::collections::BTreeMap;

/// A named sequential chain of an application's functions.
///
/// Serializable for result export, but deliberately not `Deserialize`: the
/// `&'static str` names refer to compiled-in app definitions, not data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Workflow {
    /// Workflow name (e.g. "book-flight").
    pub name: &'static str,
    /// Function names traversed in order (must exist in the app).
    pub steps: Vec<&'static str>,
}

/// The canonical request workflows of each case-study application.
///
/// These follow each application's architecture description: the airline's
/// booking saga, the facial-recognition pipeline, the IoT ingest/format
/// path, and Hello Retail's product-photo flow.
pub fn workflows(app: CaseStudyApp) -> Vec<Workflow> {
    match app {
        CaseStudyApp::AirlineBooking => vec![
            Workflow {
                name: "book-flight",
                steps: vec![
                    "ReserveBooking",
                    "CollectPayment",
                    "ConfirmBooking",
                    "NotifyBooking",
                ],
            },
            Workflow {
                name: "charge-card",
                steps: vec!["CreateCharge", "CaptureCharge"],
            },
            Workflow {
                name: "loyalty",
                steps: vec!["IngestLoyalty", "GetLoyalty"],
            },
        ],
        CaseStudyApp::FacialRecognition => vec![Workflow {
            name: "register-photo",
            steps: vec![
                "FaceDetection",
                "FaceSearch",
                "IndexFace",
                "PersistMetadata",
                "CreateThumbnail",
            ],
        }],
        CaseStudyApp::EventProcessing => vec![
            Workflow {
                name: "ingest-sensor-event",
                steps: vec!["IngestEvent", "FormatTemp", "EventInserter"],
            },
            Workflow {
                name: "dashboard-query",
                steps: vec!["GetLatestEvents", "ListAllEvents"],
            },
        ],
        CaseStudyApp::HelloRetail => vec![
            Workflow {
                name: "new-product-photo",
                steps: vec![
                    "PhotoReceive",
                    "PhotoAssign",
                    "PhotoProcessor",
                    "ProductCatalogBuilder",
                ],
            },
            Workflow {
                name: "browse-catalog",
                steps: vec!["ProductCatalogApi"],
            },
        ],
    }
}

/// End-to-end statistics of one workflow under a size assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowStats {
    /// Mean end-to-end latency per request, ms.
    pub mean_latency_ms: f64,
    /// Mean compute cost per request, USD.
    pub mean_cost_usd: f64,
}

/// Simulates `requests` executions of a workflow with the given per-function
/// memory assignment (warm path — steady-state traffic).
///
/// # Panics
///
/// Panics if a workflow step has no assigned size or no matching function.
pub fn simulate_workflow(
    platform: &Platform,
    app: CaseStudyApp,
    workflow: &Workflow,
    sizes: &BTreeMap<String, MemorySize>,
    requests: usize,
    rng: &mut RngStream,
) -> WorkflowStats {
    assert!(requests > 0, "need at least one request");
    let functions = app.functions();
    let configs: Vec<FunctionConfig> = workflow
        .steps
        .iter()
        .map(|step| {
            let f = functions
                .iter()
                .find(|f| f.name == *step)
                .unwrap_or_else(|| panic!("workflow step `{step}` not in {app}"));
            let size = *sizes
                .get(*step)
                .unwrap_or_else(|| panic!("no memory size assigned to `{step}`"));
            FunctionConfig::new(f.profile.clone(), size)
        })
        .collect();

    let mut total_latency = 0.0;
    let mut total_cost = 0.0;
    for _ in 0..requests {
        for config in &configs {
            let record = platform.invoke(config, false, rng);
            total_latency += record.duration_ms;
            total_cost += record.cost_usd;
        }
    }
    WorkflowStats {
        mean_latency_ms: total_latency / requests as f64,
        mean_cost_usd: total_cost / requests as f64,
    }
}

/// Convenience: a uniform size assignment for every function of an app.
pub fn uniform_sizes(app: CaseStudyApp, size: MemorySize) -> BTreeMap<String, MemorySize> {
    app.functions()
        .into_iter()
        .map(|f| (f.name.to_string(), size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workflow_step_exists_in_its_app() {
        for app in CaseStudyApp::ALL {
            let names: Vec<&str> = app.functions().iter().map(|f| f.name).collect();
            for wf in workflows(app) {
                assert!(!wf.steps.is_empty(), "{app}/{}", wf.name);
                for step in &wf.steps {
                    assert!(names.contains(step), "{app}/{}: missing {step}", wf.name);
                }
            }
        }
    }

    #[test]
    fn every_app_has_at_least_one_workflow() {
        for app in CaseStudyApp::ALL {
            assert!(!workflows(app).is_empty(), "{app}");
        }
    }

    #[test]
    fn end_to_end_latency_sums_the_chain() {
        let platform = Platform::aws_like();
        let app = CaseStudyApp::EventProcessing;
        let wf = &workflows(app)[0];
        let sizes = uniform_sizes(app, MemorySize::MB_512);
        let mut rng = RngStream::from_seed(1, "wf");
        let stats = simulate_workflow(&platform, app, wf, &sizes, 200, &mut rng);

        // Compare against the sum of the steps' expected durations.
        let functions = app.functions();
        let expected: f64 = wf
            .steps
            .iter()
            .map(|s| {
                let f = functions.iter().find(|f| f.name == *s).unwrap();
                platform.expected_duration_ms(&f.profile, MemorySize::MB_512)
            })
            .sum();
        let rel = (stats.mean_latency_ms - expected).abs() / expected;
        assert!(rel < 0.1, "{} vs {expected}", stats.mean_latency_ms);
        assert!(stats.mean_cost_usd > 0.0);
    }

    #[test]
    fn upsizing_speeds_up_cpu_heavy_workflows() {
        let platform = Platform::aws_like();
        let app = CaseStudyApp::HelloRetail;
        let wf = workflows(app)
            .into_iter()
            .find(|w| w.name == "new-product-photo")
            .unwrap();
        let mut rng = RngStream::from_seed(2, "wf-upsize");
        let small = simulate_workflow(
            &platform,
            app,
            &wf,
            &uniform_sizes(app, MemorySize::MB_128),
            100,
            &mut rng,
        );
        let large = simulate_workflow(
            &platform,
            app,
            &wf,
            &uniform_sizes(app, MemorySize::MB_1024),
            100,
            &mut rng,
        );
        assert!(
            large.mean_latency_ms < small.mean_latency_ms * 0.7,
            "{} vs {}",
            large.mean_latency_ms,
            small.mean_latency_ms
        );
    }

    #[test]
    fn per_function_sizing_beats_uniform_sizing() {
        // The point of per-function recommendations: mixed chains want
        // mixed sizes. Give the CPU-heavy PhotoProcessor a big size and the
        // service-bound steps small ones; the chain should be nearly as
        // fast as uniformly-big but much cheaper.
        let platform = Platform::aws_like();
        let app = CaseStudyApp::HelloRetail;
        let wf = workflows(app)
            .into_iter()
            .find(|w| w.name == "new-product-photo")
            .unwrap();
        let mut rng = RngStream::from_seed(3, "wf-mixed");

        let mut mixed = uniform_sizes(app, MemorySize::MB_256);
        mixed.insert("PhotoProcessor".to_string(), MemorySize::MB_2048);

        let uniform_big = simulate_workflow(
            &platform,
            app,
            &wf,
            &uniform_sizes(app, MemorySize::MB_2048),
            150,
            &mut rng,
        );
        let tailored = simulate_workflow(&platform, app, &wf, &mixed, 150, &mut rng);

        // Latency within ~60% of the all-big assignment (the tail steps are
        // service-bound, so shrinking them costs little time)…
        assert!(
            tailored.mean_latency_ms < uniform_big.mean_latency_ms * 1.6,
            "{} vs {}",
            tailored.mean_latency_ms,
            uniform_big.mean_latency_ms
        );
        // …at well under 70% of its cost.
        assert!(
            tailored.mean_cost_usd < uniform_big.mean_cost_usd * 0.7,
            "{} vs {}",
            tailored.mean_cost_usd,
            uniform_big.mean_cost_usd
        );
    }

    #[test]
    #[should_panic(expected = "no memory size assigned")]
    fn missing_assignment_panics() {
        let platform = Platform::aws_like();
        let app = CaseStudyApp::EventProcessing;
        let wf = &workflows(app)[0];
        let mut rng = RngStream::from_seed(4, "wf-panic");
        let _ = simulate_workflow(&platform, app, wf, &BTreeMap::new(), 1, &mut rng);
    }
}
