//! Facial Recognition — the AWS Wild Rydes workshop application
//! (5 functions; the no-op notification stub is removed, as in the paper).
//!
//! Users upload a profile picture; a workflow performs facial detection,
//! matching, and indexing. The app makes heavy use of **Rekognition**, a
//! service entirely absent from the synthetic training segments.

use crate::AppFunction;
use sizeless_platform::{ResourceProfile, ServiceCall, ServiceKind, Stage};

/// The five facial-recognition functions.
pub fn functions() -> Vec<AppFunction> {
    vec![
        AppFunction {
            name: "FaceDetection",
            profile: ResourceProfile::builder("FaceDetection")
                .stage(Stage::service(
                    "fetch-photo",
                    ServiceCall::new(ServiceKind::S3, 1, 600.0),
                ))
                .stage(Stage::cpu("prepare", 6.0).with_working_set(20.0))
                .stage(Stage::service(
                    "detect-faces",
                    ServiceCall::new(ServiceKind::Rekognition, 1, 40.0),
                ))
                .build(),
        },
        AppFunction {
            name: "FaceSearch",
            profile: ResourceProfile::builder("FaceSearch")
                .stage(Stage::cpu("build-query", 5.0).with_working_set(10.0))
                .stage(Stage::service(
                    "match-collection",
                    ServiceCall::new(ServiceKind::DynamoDb, 1, 12.0),
                ))
                .build(),
        },
        AppFunction {
            name: "IndexFace",
            profile: ResourceProfile::builder("IndexFace")
                .stage(Stage::service(
                    "index",
                    ServiceCall::new(ServiceKind::Rekognition, 1, 30.0),
                ))
                .stage(Stage::cpu("record", 4.0))
                .stage(Stage::service(
                    "persist-index",
                    ServiceCall::new(ServiceKind::DynamoDb, 1, 4.0),
                ))
                .build(),
        },
        AppFunction {
            name: "PersistMetadata",
            profile: ResourceProfile::builder("PersistMetadata")
                .stage(Stage::cpu("marshal", 2.5).with_alloc_churn(1.5))
                .stage(Stage::service(
                    "write-metadata",
                    ServiceCall::new(ServiceKind::DynamoDb, 1, 5.0),
                ))
                .build(),
        },
        AppFunction {
            name: "CreateThumbnail",
            profile: ResourceProfile::builder("CreateThumbnail")
                .stage(Stage::service(
                    "fetch-original",
                    ServiceCall::new(ServiceKind::S3, 1, 900.0),
                ))
                .stage(
                    Stage::cpu_parallel("resize", 38.0, 2.6)
                        .with_working_set(28.0)
                        .with_alloc_churn(14.0),
                )
                .stage(Stage::service(
                    "store-thumbnail",
                    ServiceCall::new(ServiceKind::S3, 1, 120.0),
                ))
                .build(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizeless_platform::{MemorySize, Platform};

    #[test]
    fn has_five_functions() {
        assert_eq!(functions().len(), 5);
    }

    #[test]
    fn rekognition_functions_are_flat_across_memory() {
        let platform = Platform::aws_like();
        let fns = functions();
        let detect = fns.iter().find(|f| f.name == "FaceDetection").unwrap();
        let t128 = platform.expected_duration_ms(&detect.profile, MemorySize::MB_128);
        let t3008 = platform.expected_duration_ms(&detect.profile, MemorySize::MB_3008);
        // The ~380 ms Rekognition call dominates both.
        assert!(t3008 > 350.0);
        assert!((t128 - t3008) / t128 < 0.4, "{t128} vs {t3008}");
    }

    #[test]
    fn thumbnail_scales_past_one_vcpu() {
        let platform = Platform::aws_like();
        let fns = functions();
        let thumb = fns.iter().find(|f| f.name == "CreateThumbnail").unwrap();
        let t2048 = platform.expected_duration_ms(&thumb.profile, MemorySize::MB_2048);
        let t3008 = platform.expected_duration_ms(&thumb.profile, MemorySize::MB_3008);
        assert!(t3008 < t2048, "parallel resize keeps scaling");
    }
}
