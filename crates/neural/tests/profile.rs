//! Developer profiling harness (ignored by default): wall-clock breakdown
//! of the grid-search unit of work per architecture. Run with
//! `cargo test --release -p sizeless_neural --test profile -- --ignored --nocapture`.

use sizeless_engine::RngStream;
use sizeless_neural::prelude::*;
use sizeless_neural::Scratch;

#[test]
#[ignore = "profiling tool, not a correctness test"]
fn profile_grid_unit_of_work() {
    let mut rng = RngStream::from_seed(1, "profile-data");
    let n = 133;
    let x = Matrix::from_vec(n, 11, (0..n * 11).map(|_| rng.standard_normal()).collect());
    let y = Matrix::from_vec(n, 5, (0..n * 5).map(|_| rng.uniform(0.2, 1.5)).collect());

    for (neurons, layers, optimizer) in [
        (64usize, 2usize, OptimizerKind::Adam { lr: 0.001 }),
        (64, 4, OptimizerKind::Adam { lr: 0.001 }),
        (128, 2, OptimizerKind::Adam { lr: 0.001 }),
        (128, 4, OptimizerKind::Adam { lr: 0.001 }),
        (128, 4, OptimizerKind::Sgd { lr: 0.01 }),
        (128, 4, OptimizerKind::Adagrad { lr: 0.01 }),
    ] {
        let cfg = NetworkConfig {
            hidden_layers: layers,
            neurons,
            loss: Loss::Mse,
            optimizer,
            l2: 0.01,
            epochs: 100,
            batch_size: 32,
            ..NetworkConfig::default()
        };
        let t0 = std::time::Instant::now();
        let net = NeuralNetwork::new(11, 5, &cfg, 7);
        let init = t0.elapsed();
        let mut net = net;
        let mut scratch = Scratch::new();
        let t1 = std::time::Instant::now();
        net.fit_with(&x, &y, &mut scratch);
        let fit = t1.elapsed();
        let t2 = std::time::Instant::now();
        let _ = net.predict(&x);
        let predict = t2.elapsed();
        println!(
            "{neurons:>4}n x {layers} layers {optimizer:<12}: init {init:>9.2?}  fit(100ep) {fit:>9.2?}  predict {predict:>9.2?}",
            optimizer = format!("{optimizer}"),
        );
    }
}
