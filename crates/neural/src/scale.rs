//! Feature standardization.
//!
//! Neural networks train poorly on features spanning several orders of
//! magnitude (milliseconds next to kilobytes next to ratios), so the
//! pipeline standardizes every feature column to zero mean / unit variance
//! using statistics of the *training* split only.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-column standardizer (`(x - mean) / std`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns column statistics from a training matrix.
    ///
    /// Constant columns get `std = 1` so they transform to zero instead of
    /// dividing by zero.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a scaler on an empty matrix");
        let n = x.rows() as f64;
        let mut means = vec![0.0; x.cols()];
        let mut stds = vec![0.0; x.cols()];
        for c in 0..x.cols() {
            let mut sum = 0.0;
            for r in 0..x.rows() {
                sum += x.get(r, c);
            }
            means[c] = sum / n;
            let mut var = 0.0;
            for r in 0..x.rows() {
                let d = x.get(r, c) - means[c];
                var += d * d;
            }
            let std = (var / n).sqrt();
            stds[c] = if std > 0.0 { std } else { 1.0 };
        }
        StandardScaler { means, stds }
    }

    /// Standardizes a matrix with the learned statistics.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "column count mismatch");
        let mut out = x.clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                out.set(r, c, (x.get(r, c) - self.means[c]) / self.stds[c]);
            }
        }
        out
    }

    /// Standardizes a single row.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted column count.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "column count mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    /// `fit` followed by `transform` on the same matrix.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let scaler = Self::fit(x);
        let t = scaler.transform(x);
        (scaler, t)
    }

    /// The learned per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The learned per-column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0]]);
        let (_, t) = StandardScaler::fit_transform(&x);
        for c in 0..2 {
            let col = t.column(c);
            let mean = col.iter().sum::<f64>() / 3.0;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_map_to_zero() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0]]);
        let (scaler, t) = StandardScaler::fit_transform(&x);
        assert_eq!(t.column(0), vec![0.0, 0.0]);
        assert_eq!(scaler.stds()[0], 1.0);
    }

    #[test]
    fn transform_uses_training_statistics() {
        let train = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let scaler = StandardScaler::fit(&train);
        let test = Matrix::from_rows(&[&[20.0]]);
        let t = scaler.transform(&test);
        // mean 5, std 5 → (20-5)/5 = 3.
        assert!((t.get(0, 0) - 3.0).abs() < 1e-12);
        assert_eq!(scaler.transform_row(&[20.0]), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_width_rejected() {
        let scaler = StandardScaler::fit(&Matrix::zeros(2, 3));
        let _ = scaler.transform(&Matrix::zeros(2, 2));
    }
}
