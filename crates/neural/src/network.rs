//! The feed-forward network with mini-batch training.

use crate::activation::Activation;
use crate::layer::Dense;
use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::optimizer::OptimizerKind;
use crate::scratch::Scratch;
use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;

/// Network hyperparameters.
///
/// The defaults are the configuration selected by the paper's grid search
/// (Table 2): Adam, MAPE loss, 200 epochs, 256 neurons, L2 = 0.01, 4 hidden
/// layers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of hidden layers.
    pub hidden_layers: usize,
    /// Neurons per hidden layer.
    pub neurons: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// Training loss.
    pub loss: Loss,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// L2 weight regularization strength.
    pub l2: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            hidden_layers: 4,
            neurons: 256,
            activation: Activation::Relu,
            loss: Loss::Mape,
            optimizer: OptimizerKind::Adam { lr: 0.001 },
            l2: 0.01,
            epochs: 200,
            batch_size: 32,
        }
    }
}

impl NetworkConfig {
    /// The paper's *initial* model used during feature selection: 3 layers
    /// of 128 neurons, 200 epochs (Section 3.4).
    pub fn feature_selection_baseline() -> Self {
        NetworkConfig {
            hidden_layers: 3,
            neurons: 128,
            l2: 0.0,
            loss: Loss::Mse,
            ..NetworkConfig::default()
        }
    }
}

/// A trained (or trainable) feed-forward network.
///
/// Serializable so a trained model can ship as an artifact (see
/// `sizeless_core`'s `TrainedSizer`): weights, optimizer state, and the
/// training-loss history all round-trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuralNetwork {
    layers: Vec<Dense>,
    config: NetworkConfig,
    seed: u64,
    epoch_losses: Vec<f64>,
}

impl NeuralNetwork {
    /// Builds an untrained network with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or hyperparameter is zero.
    pub fn new(input_dim: usize, output_dim: usize, config: &NetworkConfig, seed: u64) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "dimensions must be positive");
        assert!(
            config.hidden_layers > 0 && config.neurons > 0,
            "network needs at least one hidden layer and neuron"
        );
        assert!(
            config.epochs > 0 && config.batch_size > 0,
            "epochs and batch size must be positive"
        );
        let rng = RngStream::from_seed(seed, "nn-init");
        let mut layers = Vec::with_capacity(config.hidden_layers + 1);
        let mut dim = input_dim;
        for i in 0..config.hidden_layers {
            let mut layer_rng = rng.derive(&format!("layer-{i}"));
            layers.push(Dense::new(
                dim,
                config.neurons,
                config.activation,
                config.optimizer,
                &mut layer_rng,
            ));
            dim = config.neurons;
        }
        let mut out_rng = rng.derive("output");
        layers.push(Dense::new(
            dim,
            output_dim,
            Activation::Linear,
            config.optimizer,
            &mut out_rng,
        ));
        NeuralNetwork {
            layers,
            config: *config,
            seed,
            epoch_losses: Vec::new(),
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        // lint: allow(panic003) reason="the constructor always pushes the output layer, so layers is non-empty"
        self.layers[0].input_dim()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        // lint: allow(panic002) reason="the constructor always pushes the output layer, so layers is non-empty"
        self.layers.last().expect("at least one layer").output_dim()
    }

    /// Mean training loss per epoch, recorded by [`NeuralNetwork::fit`].
    pub fn epoch_losses(&self) -> &[f64] {
        &self.epoch_losses
    }

    /// Trains on `(x, y)` for the configured number of epochs.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty input.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) {
        self.fit_with(x, y, &mut Scratch::new());
    }

    /// Trains on `(x, y)` reusing a caller-owned [`Scratch`] workspace.
    ///
    /// Identical to [`NeuralNetwork::fit`] bit-for-bit, but callers that
    /// train many networks (cross-validation folds, grid-search workers)
    /// amortize every intermediate buffer across all of them: after the
    /// first batch at a given shape the training loop performs zero matrix
    /// allocations.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty input.
    pub fn fit_with(&mut self, x: &Matrix, y: &Matrix, scratch: &mut Scratch) {
        assert_eq!(x.rows(), y.rows(), "x and y row counts differ");
        assert_eq!(x.cols(), self.input_dim(), "x column count mismatch");
        assert_eq!(y.cols(), self.output_dim(), "y column count mismatch");
        assert!(x.rows() > 0, "cannot train on an empty dataset");

        let mut shuffle_rng = RngStream::from_seed(self.seed, "nn-shuffle");
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        self.epoch_losses.clear();
        self.epoch_losses.reserve(self.config.epochs);

        for _ in 0..self.config.epochs {
            shuffle_rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                x.select_rows_into(chunk, &mut scratch.xb);
                y.select_rows_into(chunk, &mut scratch.yb);
                epoch_loss += self.train_batch(scratch, 0);
                batches += 1;
            }
            self.epoch_losses.push(epoch_loss / batches.max(1) as f64);
        }
    }

    /// One forward + backward pass over the batch staged in
    /// `scratch.xb`/`scratch.yb`, updating every layer from `frozen`
    /// upwards. Returns the batch loss. Shared by [`NeuralNetwork::fit`]
    /// and fine-tuning (`frozen > 0`).
    pub(crate) fn train_batch(&mut self, scratch: &mut Scratch, frozen: usize) -> f64 {
        let layer_count = self.layers.len();
        scratch.ensure_layers(layer_count);

        // Forward: activations for layer l land in scratch.acts[l].
        for (l, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = scratch.acts.split_at_mut(l);
            let input: &Matrix = if l == 0 { &scratch.xb } else { &prev[l - 1] };
            // lint: allow(panic003) reason="split_at_mut(l) with l < len leaves a non-empty tail"
            layer.forward_into(input, &mut rest[0]);
        }

        let pred = &scratch.acts[layer_count - 1];
        let loss = self.config.loss.value(&scratch.yb, pred);
        self.config
            .loss
            .gradient_into(&scratch.yb, pred, &mut scratch.delta);

        // Backward: δ ping-pongs between the two delta buffers; the
        // gradient w.r.t. the input of layer `frozen` is never needed.
        for l in (frozen..layer_count).rev() {
            let (prev, rest) = scratch.acts.split_at_mut(l);
            let input: &Matrix = if l == 0 { &scratch.xb } else { &prev[l - 1] };
            // lint: allow(panic003) reason="split_at_mut(l) with l < len leaves a non-empty tail"
            let output = &rest[0];
            let grad_input = if l > frozen {
                Some(&mut scratch.delta_next)
            } else {
                None
            };
            self.layers[l].backward_into(
                input,
                output,
                &mut scratch.delta,
                grad_input,
                &mut scratch.d_w,
                &mut scratch.d_b,
                &mut scratch.w_t,
                self.config.l2,
            );
            if l > frozen {
                std::mem::swap(&mut scratch.delta, &mut scratch.delta_next);
            }
        }
        loss
    }

    /// Predicts outputs for a batch of inputs.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input dimension.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "x column count mismatch");
        // Two ping-pong activation buffers; the layers stay untouched (the
        // old implementation cloned every weight matrix per call).
        let mut a = Matrix::zeros(0, 0);
        let mut b = Matrix::zeros(0, 0);
        // lint: allow(panic003) reason="the constructor always pushes the output layer, so layers is non-empty"
        self.layers[0].forward_into(x, &mut a);
        for layer in &self.layers[1..] {
            layer.forward_into(&a, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        a
    }

    /// Predicts a single row.
    pub fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let m = Matrix::from_rows(&[x]);
        self.predict(&m).row(0).to_vec()
    }

    /// The seed the network was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub(crate) fn layers_internal(&self) -> &[Dense] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NetworkConfig {
        NetworkConfig {
            hidden_layers: 2,
            neurons: 24,
            loss: Loss::Mse,
            l2: 0.0,
            epochs: 300,
            batch_size: 8,
            ..NetworkConfig::default()
        }
    }

    /// y = [2a, a+b] — multi-target linear map.
    fn linear_dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = RngStream::from_seed(seed, "nn-data");
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let a = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            xs.extend_from_slice(&[a, b]);
            ys.extend_from_slice(&[2.0 * a, a + b]);
        }
        (Matrix::from_vec(n, 2, xs), Matrix::from_vec(n, 2, ys))
    }

    #[test]
    fn learns_multi_target_linear_map() {
        let (x, y) = linear_dataset(200, 1);
        let mut net = NeuralNetwork::new(2, 2, &small_config(), 2);
        net.fit(&x, &y);
        let pred = net.predict(&x);
        let mse = Loss::Mse.value(&y, &pred);
        assert!(mse < 0.01, "mse={mse}");
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = a² (needs the hidden nonlinearity).
        let mut rng = RngStream::from_seed(3, "nn-sq");
        let n = 300;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            xs.push(a);
            ys.push(a * a);
        }
        let x = Matrix::from_vec(n, 1, xs);
        let y = Matrix::from_vec(n, 1, ys);
        let mut net = NeuralNetwork::new(1, 1, &small_config(), 4);
        net.fit(&x, &y);
        let mse = Loss::Mse.value(&y, &net.predict(&x));
        assert!(mse < 0.01, "mse={mse}");
    }

    #[test]
    fn training_loss_decreases() {
        let (x, y) = linear_dataset(100, 5);
        let mut net = NeuralNetwork::new(2, 2, &small_config(), 6);
        net.fit(&x, &y);
        let losses = net.epoch_losses();
        assert_eq!(losses.len(), 300);
        let first10: f64 = losses[..10].iter().sum();
        let last10: f64 = losses[losses.len() - 10..].iter().sum();
        assert!(last10 < first10 * 0.2, "loss should drop substantially");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = linear_dataset(50, 7);
        let train = |seed| {
            let mut net = NeuralNetwork::new(2, 2, &small_config(), seed);
            net.fit(&x, &y);
            net.predict_one(&[0.3, 0.7])
        };
        assert_eq!(train(9), train(9));
        assert_ne!(train(9), train(10));
    }

    #[test]
    fn mape_loss_trains_on_ratio_targets() {
        // MAPE-trained network on strictly positive ratio-like targets —
        // the paper's actual setting.
        let mut rng = RngStream::from_seed(8, "nn-mape");
        let n = 200;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.1, 1.0);
            xs.push(a);
            ys.push(0.5 + a); // ratios in [0.6, 1.5]
        }
        let x = Matrix::from_vec(n, 1, xs);
        let y = Matrix::from_vec(n, 1, ys.clone());
        let cfg = NetworkConfig {
            loss: Loss::Mape,
            epochs: 400,
            ..small_config()
        };
        let mut net = NeuralNetwork::new(1, 1, &cfg, 11);
        net.fit(&x, &y);
        let mape = Loss::Mape.value(&y, &net.predict(&x));
        assert!(mape < 0.05, "mape={mape}");
    }

    #[test]
    fn network_shape_accessors() {
        let net = NeuralNetwork::new(13, 5, &NetworkConfig::default(), 0);
        assert_eq!(net.input_dim(), 13);
        assert_eq!(net.output_dim(), 5);
    }

    #[test]
    fn feature_selection_baseline_matches_paper() {
        let cfg = NetworkConfig::feature_selection_baseline();
        assert_eq!(cfg.hidden_layers, 3);
        assert_eq!(cfg.neurons, 128);
        assert_eq!(cfg.epochs, 200);
    }

    #[test]
    fn default_config_matches_table_2() {
        let cfg = NetworkConfig::default();
        assert_eq!(cfg.hidden_layers, 4);
        assert_eq!(cfg.neurons, 256);
        assert_eq!(cfg.l2, 0.01);
        assert_eq!(cfg.epochs, 200);
        assert_eq!(cfg.loss, Loss::Mape);
        assert!(matches!(cfg.optimizer, OptimizerKind::Adam { .. }));
    }

    #[test]
    #[should_panic(expected = "row counts differ")]
    fn mismatched_dataset_panics() {
        let mut net = NeuralNetwork::new(2, 1, &small_config(), 0);
        let x = Matrix::zeros(3, 2);
        let y = Matrix::zeros(2, 1);
        net.fit(&x, &y);
    }
}
