//! Deterministic parallel fan-out for training workloads.
//!
//! Grid search, cross-validation, and forward selection are embarrassingly
//! parallel: every unit of work derives its own RNG stream from
//! `(seed, job)` and writes to its own indexed slot, so the result is
//! **bit-identical regardless of thread count or scheduling**. The
//! determinism suite pins this by running the same search with 1 and 4
//! threads and comparing outputs bit-for-bit.
//!
//! The thread count comes from an explicit `threads` argument (the
//! `--threads` flag of the experiment binaries) or, for the convenience
//! wrappers, from [`default_threads`] — the `SIZELESS_THREADS` environment
//! variable if set, else the machine's available parallelism.

use crate::scratch::Scratch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker-thread count: `SIZELESS_THREADS` if set (clamped to
/// at least 1), otherwise [`std::thread::available_parallelism`].
///
/// Changing the thread count never changes results — only wall-clock time —
/// but pinning `SIZELESS_THREADS=1` makes runs easier to profile and keeps
/// CI timings stable.
pub fn default_threads() -> usize {
    match std::env::var("SIZELESS_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("SIZELESS_THREADS must be a positive integer, got {v:?}"))
            .max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `f(0..n)` across `threads` scoped workers and returns the results
/// in index order.
///
/// Each worker owns a [`Scratch`] workspace reused across all jobs it
/// claims, so fan-out adds no per-job allocation cost. Jobs are claimed
/// from a shared atomic counter (work stealing); because every job writes
/// only its own slot, the output is independent of which worker ran what.
///
/// With `threads == 1` no thread is spawned at all — the jobs run inline on
/// the caller's stack, which is the exact serial path the parallel result
/// is bit-compared against in the determinism tests.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Scratch) -> T + Sync,
{
    assert!(threads > 0, "at least one worker thread required");
    if threads == 1 || n <= 1 {
        let mut scratch = Scratch::new();
        return (0..n).map(|i| f(i, &mut scratch)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| {
                let mut scratch = Scratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i, &mut scratch);
                    // lint: allow(panic002) reason="the lock is held only for a plain assignment, which cannot panic, so it is never poisoned"
                    *slots[i].lock().expect("worker never panics holding the lock") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                // lint: allow(panic002) reason="the scope joins all workers first; a worker panic propagates from the scope itself"
                .expect("no worker panicked")
                // lint: allow(panic002) reason="the shared counter hands every index to exactly one worker, so every slot is filled"
                .expect("every job completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 4, 9] {
            let out = parallel_map(threads, 23, |i, _| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(parallel_map(16, 2, |i, _| i), vec![0, 1]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(parallel_map(4, 0, |i, _| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = parallel_map(0, 3, |i, _| i);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
