//! A dense (fully connected) layer with cached activations for
//! backpropagation.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::optimizer::{OptimizerKind, OptimizerState};
use sizeless_engine::RngStream;

/// A dense layer `a = act(x·W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix, // input_dim × output_dim
    bias: Vec<f64>,
    activation: Activation,
    w_state: OptimizerState,
    b_state: OptimizerState,
    cached_input: Option<Matrix>,
    cached_pre: Option<Matrix>,
}

impl Dense {
    /// Creates a He-initialized layer.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        optimizer: OptimizerKind,
        rng: &mut RngStream,
    ) -> Self {
        Dense {
            weights: Matrix::he_init(input_dim, output_dim, rng),
            bias: vec![0.0; output_dim],
            activation,
            w_state: optimizer.state(input_dim * output_dim),
            b_state: optimizer.state(output_dim),
            cached_input: None,
            cached_pre: None,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix (for inspection and tests).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Forward pass. With `train`, caches intermediates for [`Dense::backward`].
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut z = x.matmul(&self.weights);
        z.add_row_broadcast(&self.bias);
        if train {
            self.cached_input = Some(x.clone());
            self.cached_pre = Some(z.clone());
        }
        self.activation.forward_inplace(&mut z);
        z
    }

    /// Backward pass: consumes the cached forward state, applies the
    /// optimizer update (with L2 on weights, not biases), and returns the
    /// gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Matrix, l2: f64) -> Matrix {
        let x = self
            .cached_input
            .take()
            .expect("backward requires a training-mode forward pass");
        let pre = self
            .cached_pre
            .take()
            .expect("backward requires a training-mode forward pass");

        // δ = grad_output ⊙ act'(z)
        let mut delta = grad_output.clone();
        delta.hadamard_inplace(&self.activation.derivative(&pre));

        // Parameter gradients. L2 matches the Keras convention: the penalty
        // λ‖W‖² is added per batch, contributing 2λW to the gradient.
        let mut d_w = x.transpose().matmul(&delta);
        if l2 > 0.0 {
            d_w.add_scaled(&self.weights, 2.0 * l2);
        }
        let d_b = delta.column_sums();

        let grad_input = delta.matmul(&self.weights.transpose());

        self.w_state.step(self.weights.data_mut(), d_w.data());
        self.b_state.step(&mut self.bias, &d_b);

        grad_input
    }

    /// Gradients only, without updating parameters (used by tests for
    /// finite-difference checks).
    pub fn gradients(&self, grad_output: &Matrix) -> (Matrix, Vec<f64>) {
        let x = self
            .cached_input
            .as_ref()
            .expect("gradients require a training-mode forward pass");
        let pre = self
            .cached_pre
            .as_ref()
            .expect("gradients require a training-mode forward pass");
        let mut delta = grad_output.clone();
        delta.hadamard_inplace(&self.activation.derivative(pre));
        (x.transpose().matmul(&delta), delta.column_sums())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;

    fn rng() -> RngStream {
        RngStream::from_seed(11, "layer-test")
    }

    #[test]
    fn forward_shape() {
        let mut r = rng();
        let mut layer = Dense::new(3, 5, Activation::Relu, OptimizerKind::Sgd { lr: 0.1 }, &mut r);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (4, 5));
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.output_dim(), 5);
    }

    /// End-to-end gradient check of one linear layer against finite
    /// differences of the MSE loss.
    #[test]
    fn weight_gradients_match_finite_differences() {
        let mut r = rng();
        let mut layer =
            Dense::new(2, 2, Activation::Linear, OptimizerKind::Sgd { lr: 0.0 }, &mut r);
        let x = Matrix::from_rows(&[&[0.4, -0.3], &[1.2, 0.8]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);

        let pred = layer.forward(&x, true);
        let grad_out = Loss::Mse.gradient(&t, &pred);
        let (d_w, d_b) = layer.gradients(&grad_out);

        let h = 1e-6;
        // Check each weight.
        for i in 0..4 {
            let mut perturbed = layer.clone();
            perturbed.weights.data_mut()[i] += h;
            let up = Loss::Mse.value(&t, &perturbed.forward(&x, false));
            let mut perturbed = layer.clone();
            perturbed.weights.data_mut()[i] -= h;
            let down = Loss::Mse.value(&t, &perturbed.forward(&x, false));
            let numeric = (up - down) / (2.0 * h);
            assert!(
                (d_w.data()[i] - numeric).abs() < 1e-5,
                "w[{i}]: analytic {} vs numeric {numeric}",
                d_w.data()[i]
            );
        }
        // Check each bias.
        for (i, &analytic) in d_b.iter().enumerate().take(2) {
            let mut perturbed = layer.clone();
            perturbed.bias[i] += h;
            let up = Loss::Mse.value(&t, &perturbed.forward(&x, false));
            let mut perturbed = layer.clone();
            perturbed.bias[i] -= h;
            let down = Loss::Mse.value(&t, &perturbed.forward(&x, false));
            let numeric = (up - down) / (2.0 * h);
            assert!((analytic - numeric).abs() < 1e-5, "b[{i}]");
        }
    }

    #[test]
    fn relu_layer_backward_masks_dead_units() {
        let mut r = rng();
        let mut layer =
            Dense::new(1, 1, Activation::Relu, OptimizerKind::Sgd { lr: 0.0 }, &mut r);
        // Force a negative pre-activation.
        layer.weights.set(0, 0, -1.0);
        let x = Matrix::from_rows(&[&[1.0]]);
        let out = layer.forward(&x, true);
        assert_eq!(out.get(0, 0), 0.0);
        let grad_in = layer.backward(&Matrix::from_rows(&[&[1.0]]), 0.0);
        assert_eq!(grad_in.get(0, 0), 0.0, "dead ReLU passes no gradient");
    }

    #[test]
    fn backward_updates_parameters() {
        let mut r = rng();
        let mut layer =
            Dense::new(2, 1, Activation::Linear, OptimizerKind::Sgd { lr: 0.5 }, &mut r);
        let before = layer.weights.clone();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&Matrix::from_rows(&[&[1.0]]), 0.0);
        assert_ne!(layer.weights, before);
    }

    #[test]
    fn l2_decays_weights_even_with_zero_data_gradient() {
        let mut r = rng();
        let mut layer =
            Dense::new(1, 1, Activation::Linear, OptimizerKind::Sgd { lr: 0.1 }, &mut r);
        layer.weights.set(0, 0, 1.0);
        let x = Matrix::from_rows(&[&[0.0]]); // zero input → zero data grad
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&Matrix::from_rows(&[&[0.0]]), 0.1);
        assert!(layer.weights.get(0, 0) < 1.0, "L2 should shrink the weight");
    }

    #[test]
    #[should_panic(expected = "training-mode forward")]
    fn backward_without_forward_panics() {
        let mut r = rng();
        let mut layer =
            Dense::new(1, 1, Activation::Linear, OptimizerKind::Sgd { lr: 0.1 }, &mut r);
        let _ = layer.backward(&Matrix::from_rows(&[&[1.0]]), 0.0);
    }
}
