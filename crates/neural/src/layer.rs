//! A dense (fully connected) layer.
//!
//! Forward and backward passes write into caller-owned buffers (see
//! [`crate::scratch::Scratch`]): the layer itself caches nothing, clones
//! nothing, and allocates nothing — all intermediates live in the reusable
//! workspace threaded through by the network.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::optimizer::{OptimizerKind, OptimizerState};
use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;

/// A dense layer `a = act(x·W + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix, // input_dim × output_dim
    bias: Vec<f64>,
    activation: Activation,
    w_state: OptimizerState,
    b_state: OptimizerState,
}

impl Dense {
    /// Creates a He-initialized layer.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        optimizer: OptimizerKind,
        rng: &mut RngStream,
    ) -> Self {
        Dense {
            weights: Matrix::he_init(input_dim, output_dim, rng),
            bias: vec![0.0; output_dim],
            activation,
            w_state: optimizer.state(input_dim * output_dim),
            b_state: optimizer.state(output_dim),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix (for inspection and tests).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Forward pass into a reusable buffer: `out = act(x·W + b)`.
    ///
    /// Allocation-free after warmup; used for both inference and training
    /// (the training caller keeps `out` around as this layer's cached
    /// activation).
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weights, out);
        out.add_row_broadcast(&self.bias);
        self.activation.forward_inplace(out);
    }

    /// Allocating forward pass (convenience for tests and small callers).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// Backward pass with zero intermediate allocations.
    ///
    /// * `input` — the batch this layer saw in the forward pass;
    /// * `output` — this layer's post-activation output from that pass;
    /// * `delta` — on entry ∂L/∂output; overwritten in place with
    ///   ∂L/∂z via the activation derivative;
    /// * `grad_input` — if present, receives ∂L/∂input (skip for the
    ///   first trainable layer, where nothing consumes it);
    /// * `d_w` / `d_b` / `w_t` — caller-owned work buffers, fully
    ///   overwritten (`w_t` stages the transposed weights).
    ///
    /// Applies the optimizer update (with L2 on weights, not biases)
    /// before returning. The weight gradient uses the fused `inputᵀ·δ`
    /// kernel; the input gradient stages `Wᵀ` in `w_t` and runs the
    /// FMA-tiled [`Matrix::matmul_into`], which is bit-identical to the
    /// fused [`Matrix::matmul_transpose_b_into`] (same ascending-`k`
    /// chains) but substantially faster at training shapes, where the
    /// dot-product form cannot use SIMD loads.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_into(
        &mut self,
        input: &Matrix,
        output: &Matrix,
        delta: &mut Matrix,
        grad_input: Option<&mut Matrix>,
        d_w: &mut Matrix,
        d_b: &mut Vec<f64>,
        w_t: &mut Matrix,
        l2: f64,
    ) {
        // δ = grad_output ⊙ act'(z), in place.
        self.activation.apply_derivative(output, delta);

        // Parameter gradients. L2 matches the Keras convention: the penalty
        // λ‖W‖² is added per batch, contributing 2λW to the gradient.
        input.matmul_transpose_a_into(delta, d_w);
        if l2 > 0.0 {
            d_w.add_scaled(&self.weights, 2.0 * l2);
        }
        delta.column_sums_into(d_b);

        if let Some(grad_input) = grad_input {
            self.weights.transpose_into(w_t);
            delta.matmul_into(w_t, grad_input);
        }

        self.w_state.step(self.weights.data_mut(), d_w.data());
        self.b_state.step(&mut self.bias, d_b);
    }

    /// Gradients only, without updating parameters (used by tests for
    /// finite-difference checks). `input`/`output` are the forward-pass
    /// batch and this layer's activation output for it.
    pub fn gradients(
        &self,
        input: &Matrix,
        output: &Matrix,
        grad_output: &Matrix,
    ) -> (Matrix, Vec<f64>) {
        let mut delta = grad_output.clone();
        self.activation.apply_derivative(output, &mut delta);
        let mut d_w = Matrix::zeros(0, 0);
        input.matmul_transpose_a_into(&delta, &mut d_w);
        (d_w, delta.column_sums())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;

    fn rng() -> RngStream {
        RngStream::from_seed(11, "layer-test")
    }

    /// One training step through the scratch-style API.
    fn train_step(layer: &mut Dense, x: &Matrix, grad_out: &Matrix, l2: f64) -> Matrix {
        let out = layer.forward(x);
        let mut delta = grad_out.clone();
        let mut grad_input = Matrix::zeros(0, 0);
        let mut d_w = Matrix::zeros(0, 0);
        let mut d_b = Vec::new();
        let mut w_t = Matrix::zeros(0, 0);
        layer.backward_into(
            x,
            &out,
            &mut delta,
            Some(&mut grad_input),
            &mut d_w,
            &mut d_b,
            &mut w_t,
            l2,
        );
        grad_input
    }

    #[test]
    fn forward_shape() {
        let mut r = rng();
        let layer = Dense::new(3, 5, Activation::Relu, OptimizerKind::Sgd { lr: 0.1 }, &mut r);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.output_dim(), 5);
    }

    /// End-to-end gradient check of one linear layer against finite
    /// differences of the MSE loss.
    #[test]
    fn weight_gradients_match_finite_differences() {
        let mut r = rng();
        let layer =
            Dense::new(2, 2, Activation::Linear, OptimizerKind::Sgd { lr: 0.0 }, &mut r);
        let x = Matrix::from_rows(&[&[0.4, -0.3], &[1.2, 0.8]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);

        let pred = layer.forward(&x);
        let grad_out = Loss::Mse.gradient(&t, &pred);
        let (d_w, d_b) = layer.gradients(&x, &pred, &grad_out);

        let h = 1e-6;
        // Check each weight.
        for i in 0..4 {
            let mut perturbed = layer.clone();
            perturbed.weights.data_mut()[i] += h;
            let up = Loss::Mse.value(&t, &perturbed.forward(&x));
            let mut perturbed = layer.clone();
            perturbed.weights.data_mut()[i] -= h;
            let down = Loss::Mse.value(&t, &perturbed.forward(&x));
            let numeric = (up - down) / (2.0 * h);
            assert!(
                (d_w.data()[i] - numeric).abs() < 1e-5,
                "w[{i}]: analytic {} vs numeric {numeric}",
                d_w.data()[i]
            );
        }
        // Check each bias.
        for (i, &analytic) in d_b.iter().enumerate().take(2) {
            let mut perturbed = layer.clone();
            perturbed.bias[i] += h;
            let up = Loss::Mse.value(&t, &perturbed.forward(&x));
            let mut perturbed = layer.clone();
            perturbed.bias[i] -= h;
            let down = Loss::Mse.value(&t, &perturbed.forward(&x));
            let numeric = (up - down) / (2.0 * h);
            assert!((analytic - numeric).abs() < 1e-5, "b[{i}]");
        }
    }

    #[test]
    fn relu_layer_backward_masks_dead_units() {
        let mut r = rng();
        let mut layer =
            Dense::new(1, 1, Activation::Relu, OptimizerKind::Sgd { lr: 0.0 }, &mut r);
        // Force a negative pre-activation.
        layer.weights.set(0, 0, -1.0);
        let x = Matrix::from_rows(&[&[1.0]]);
        let out = layer.forward(&x);
        assert_eq!(out.get(0, 0), 0.0);
        let grad_in = train_step(&mut layer, &x, &Matrix::from_rows(&[&[1.0]]), 0.0);
        assert_eq!(grad_in.get(0, 0), 0.0, "dead ReLU passes no gradient");
    }

    #[test]
    fn backward_updates_parameters() {
        let mut r = rng();
        let mut layer =
            Dense::new(2, 1, Activation::Linear, OptimizerKind::Sgd { lr: 0.5 }, &mut r);
        let before = layer.weights.clone();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let _ = train_step(&mut layer, &x, &Matrix::from_rows(&[&[1.0]]), 0.0);
        assert_ne!(layer.weights, before);
    }

    #[test]
    fn l2_decays_weights_even_with_zero_data_gradient() {
        let mut r = rng();
        let mut layer =
            Dense::new(1, 1, Activation::Linear, OptimizerKind::Sgd { lr: 0.1 }, &mut r);
        layer.weights.set(0, 0, 1.0);
        let x = Matrix::from_rows(&[&[0.0]]); // zero input → zero data grad
        let _ = train_step(&mut layer, &x, &Matrix::from_rows(&[&[0.0]]), 0.1);
        assert!(layer.weights.get(0, 0) < 1.0, "L2 should shrink the weight");
    }

    /// The scratch-style backward must produce the same update as the
    /// textbook formulation computed with allocating ops.
    #[test]
    fn backward_into_matches_textbook_gradients() {
        let mut r = rng();
        let mut layer =
            Dense::new(3, 2, Activation::Relu, OptimizerKind::Sgd { lr: 0.1 }, &mut r);
        let reference_w = {
            let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.1, 0.3, -0.6]]);
            let grad_out = Matrix::from_rows(&[&[0.5, -0.2], &[0.1, 0.7]]);
            let pre = {
                let mut z = x.matmul(layer.weights());
                z.add_row_broadcast(&layer.bias);
                z
            };
            let mut delta = grad_out.clone();
            delta.hadamard_inplace(&Activation::Relu.derivative(&pre));
            let mut d_w = x.transpose().matmul(&delta);
            d_w.add_scaled(layer.weights(), 2.0 * 0.01);
            let mut w = layer.weights().clone();
            w.add_scaled(&d_w, -0.1); // SGD step
            w
        };
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.1, 0.3, -0.6]]);
        let _ = train_step(
            &mut layer,
            &x,
            &Matrix::from_rows(&[&[0.5, -0.2], &[0.1, 0.7]]),
            0.01,
        );
        for (a, b) in layer.weights().data().iter().zip(reference_w.data()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
