//! Regression losses with analytic gradients.
//!
//! The paper's hyperparameter grid covers MSE, MAE, and MAPE; the selected
//! configuration (Table 2) trains with **MAPE**, which suits the prediction
//! target — execution-time *ratios* spanning an order of magnitude — because
//! it weights relative rather than absolute errors.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Guard against division by (near-)zero targets in MAPE.
const MAPE_EPS: f64 = 1e-8;

/// A training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Mean absolute percentage error.
    Mape,
}

impl Loss {
    /// All losses of the paper's grid.
    pub const ALL: [Loss; 3] = [Loss::Mse, Loss::Mae, Loss::Mape];

    /// The loss value over a batch.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn value(self, y_true: &Matrix, y_pred: &Matrix) -> f64 {
        assert_eq!(
            (y_true.rows(), y_true.cols()),
            (y_pred.rows(), y_pred.cols()),
            "loss shape mismatch"
        );
        let n = (y_true.rows() * y_true.cols()) as f64;
        let mut total = 0.0;
        for (t, p) in y_true.data().iter().zip(y_pred.data()) {
            total += match self {
                Loss::Mse => (t - p) * (t - p),
                Loss::Mae => (t - p).abs(),
                Loss::Mape => (t - p).abs() / t.abs().max(MAPE_EPS),
            };
        }
        total / n
    }

    /// The gradient of the loss with respect to the predictions.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn gradient(self, y_true: &Matrix, y_pred: &Matrix) -> Matrix {
        let mut grad = Matrix::zeros(0, 0);
        self.gradient_into(y_true, y_pred, &mut grad);
        grad
    }

    /// The gradient written into a reusable buffer — the allocation-free
    /// form used by the mini-batch training loop.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn gradient_into(self, y_true: &Matrix, y_pred: &Matrix, grad: &mut Matrix) {
        assert_eq!(
            (y_true.rows(), y_true.cols()),
            (y_pred.rows(), y_pred.cols()),
            "loss shape mismatch"
        );
        let n = (y_true.rows() * y_true.cols()) as f64;
        grad.resize_for_overwrite(y_true.rows(), y_true.cols());
        for ((g, t), p) in grad
            .data_mut()
            .iter_mut()
            .zip(y_true.data())
            .zip(y_pred.data())
        {
            *g = match self {
                Loss::Mse => 2.0 * (p - t) / n,
                Loss::Mae => (p - t).signum() / n,
                Loss::Mape => (p - t).signum() / (t.abs().max(MAPE_EPS) * n),
            };
        }
    }
}

impl fmt::Display for Loss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Loss::Mse => "MSE",
            Loss::Mae => "MAE",
            Loss::Mape => "MAPE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Matrix, Matrix) {
        (
            Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 8.0]]),
            Matrix::from_rows(&[&[1.5, 2.0], &[3.0, 10.0]]),
        )
    }

    #[test]
    fn mse_value_hand_computed() {
        let (t, p) = pair();
        // Squared errors: 0.25, 0, 1, 4 → mean 1.3125.
        assert!((Loss::Mse.value(&t, &p) - 1.3125).abs() < 1e-12);
    }

    #[test]
    fn mae_value_hand_computed() {
        let (t, p) = pair();
        // |e|: 0.5, 0, 1, 2 → mean 0.875.
        assert!((Loss::Mae.value(&t, &p) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn mape_value_hand_computed() {
        let (t, p) = pair();
        // |e|/t: 0.5, 0, 0.25, 0.25 → mean 0.25.
        assert!((Loss::Mape.value(&t, &p) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_zero_loss_and_gradient() {
        let t = Matrix::from_rows(&[&[3.0, 4.0]]);
        for loss in Loss::ALL {
            assert_eq!(loss.value(&t, &t), 0.0);
            if loss == Loss::Mse {
                assert!(loss.gradient(&t, &t).data().iter().all(|&g| g == 0.0));
            }
        }
    }

    /// Central finite differences validate every analytic gradient.
    #[test]
    fn gradients_match_finite_differences() {
        let t = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 8.0]]);
        let p = Matrix::from_rows(&[&[1.5, 2.3], &[3.1, 9.7]]);
        let h = 1e-6;
        for loss in Loss::ALL {
            let grad = loss.gradient(&t, &p);
            for i in 0..4 {
                let mut plus = p.clone();
                plus.data_mut()[i] += h;
                let mut minus = p.clone();
                minus.data_mut()[i] -= h;
                let numeric = (loss.value(&t, &plus) - loss.value(&t, &minus)) / (2.0 * h);
                assert!(
                    (grad.data()[i] - numeric).abs() < 1e-5,
                    "{loss} grad[{i}]: analytic {} vs numeric {numeric}",
                    grad.data()[i]
                );
            }
        }
    }

    #[test]
    fn mape_guards_zero_targets() {
        let t = Matrix::from_rows(&[&[0.0]]);
        let p = Matrix::from_rows(&[&[1.0]]);
        assert!(Loss::Mape.value(&t, &p).is_finite());
        assert!(Loss::Mape.gradient(&t, &p).data()[0].is_finite());
    }

    #[test]
    fn display_names() {
        assert_eq!(Loss::Mape.to_string(), "MAPE");
    }
}
