//! Activation functions.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// An element-wise activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (hidden layers).
    Relu,
    /// Identity (the regression output layer).
    Linear,
}

impl Activation {
    /// Applies the activation in place.
    pub fn forward_inplace(self, m: &mut Matrix) {
        match self {
            Activation::Relu => m.map_inplace(|v| if v > 0.0 { v } else { 0.0 }),
            Activation::Linear => {}
        }
    }

    /// The derivative evaluated at the *pre-activation* values.
    pub fn derivative(self, pre_activation: &Matrix) -> Matrix {
        let mut d = pre_activation.clone();
        match self {
            Activation::Relu => d.map_inplace(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Linear => d.map_inplace(|_| 1.0),
        }
        d
    }

    /// Multiplies `grad` in place by the activation derivative, evaluated
    /// from the *post-activation* `output` — the allocation-free form used
    /// by the backward pass.
    ///
    /// For the activations here the derivative is recoverable from the
    /// output alone: ReLU output is positive exactly where its
    /// pre-activation was, and the linear derivative is 1 everywhere, so
    /// this is bit-identical to `grad ⊙ derivative(pre)` while needing
    /// neither a cached pre-activation matrix nor a derivative allocation.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_derivative(self, output: &Matrix, grad: &mut Matrix) {
        assert_eq!(
            (output.rows(), output.cols()),
            (grad.rows(), grad.cols()),
            "derivative shape mismatch"
        );
        match self {
            Activation::Relu => {
                for (g, &o) in grad.data_mut().iter_mut().zip(output.data()) {
                    *g = if o > 0.0 { *g } else { 0.0 };
                }
            }
            Activation::Linear => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives() {
        let mut m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        Activation::Relu.forward_inplace(&mut m);
        assert_eq!(m.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_derivative_is_step() {
        let m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let d = Activation::Relu.derivative(&m);
        assert_eq!(d.row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn apply_derivative_matches_hadamard_with_derivative() {
        let pre = Matrix::from_rows(&[&[-1.0, 0.0, 2.0], &[3.0, -0.5, 0.1]]);
        for act in [Activation::Relu, Activation::Linear] {
            let mut out = pre.clone();
            act.forward_inplace(&mut out);
            let mut grad = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[-2.0, 0.4, 5.0]]);
            let mut reference = grad.clone();
            reference.hadamard_inplace(&act.derivative(&pre));
            act.apply_derivative(&out, &mut grad);
            for (a, b) in grad.data().iter().zip(reference.data()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn linear_is_identity() {
        let mut m = Matrix::from_rows(&[&[-3.0, 4.0]]);
        let before = m.clone();
        Activation::Linear.forward_inplace(&mut m);
        assert_eq!(m, before);
        let d = Activation::Linear.derivative(&m);
        assert_eq!(d.row(0), &[1.0, 1.0]);
    }
}
