//! Activation functions.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// An element-wise activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (hidden layers).
    Relu,
    /// Identity (the regression output layer).
    Linear,
}

impl Activation {
    /// Applies the activation in place.
    pub fn forward_inplace(self, m: &mut Matrix) {
        match self {
            Activation::Relu => m.map_inplace(|v| if v > 0.0 { v } else { 0.0 }),
            Activation::Linear => {}
        }
    }

    /// The derivative evaluated at the *pre-activation* values.
    pub fn derivative(self, pre_activation: &Matrix) -> Matrix {
        let mut d = pre_activation.clone();
        match self {
            Activation::Relu => d.map_inplace(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Linear => d.map_inplace(|_| 1.0),
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives() {
        let mut m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        Activation::Relu.forward_inplace(&mut m);
        assert_eq!(m.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_derivative_is_step() {
        let m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let d = Activation::Relu.derivative(&m);
        assert_eq!(d.row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn linear_is_identity() {
        let mut m = Matrix::from_rows(&[&[-3.0, 4.0]]);
        let before = m.clone();
        Activation::Linear.forward_inplace(&mut m);
        assert_eq!(m, before);
        let d = Activation::Linear.derivative(&m);
        assert_eq!(d.row(0), &[1.0, 1.0]);
    }
}
