//! A from-scratch dense neural-network library for multi-target regression.
//!
//! The paper's performance model is a small feed-forward network (Table 2:
//! Adam optimizer, MAPE loss, 200 epochs, 256 neurons, L2 = 0.01, 4 layers)
//! trained with Keras. Mature ML crates are not available in this
//! environment, so this crate implements the required subset exactly:
//!
//! * [`matrix`] — a minimal row-major matrix with the operations training
//!   needs.
//! * [`activation`] — ReLU / linear activations.
//! * [`loss`] — MSE, MAE, and MAPE losses with analytic gradients.
//! * [`optimizer`] — SGD, Adam, and Adagrad (the paper's grid).
//! * [`layer`] / [`network`] — dense layers and the full network with
//!   mini-batch training, L2 regularization, and deterministic seeding.
//! * [`scratch`] — the reusable training workspace that makes the
//!   mini-batch hot path allocation-free.
//! * [`parallel`] — deterministic multi-threaded fan-out for the search
//!   loops (bit-identical results for every thread count).
//! * [`scale`] — feature standardization.
//! * [`crossval`] — k-fold cross-validation (the paper runs 10×5-fold).
//! * [`grid`] — hyperparameter grid search (Table 2).
//! * [`selection`] — sequential forward feature selection (Figure 4).
//! * [`pdp`] — partial dependence computation (Figure 5).
//!
//! # Examples
//!
//! Learn `y = [2x₀, x₀ + x₁]`:
//!
//! ```
//! use sizeless_neural::prelude::*;
//!
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.5, 0.5], &[1.0, 0.0], &[0.0, 1.0]]);
//! let y = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 1.0], &[0.0, 1.0]]);
//! let cfg = NetworkConfig {
//!     hidden_layers: 2,
//!     neurons: 16,
//!     epochs: 800,
//!     loss: Loss::Mse,
//!     l2: 0.0,
//!     batch_size: 4,
//!     ..NetworkConfig::default()
//! };
//! let mut net = NeuralNetwork::new(2, 2, &cfg, 7);
//! net.fit(&x, &y);
//! let pred = net.predict(&x);
//! assert!((pred.get(2, 0) - 2.0).abs() < 0.2);
//! ```

pub mod activation;
pub mod crossval;
pub mod grid;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod network;
pub mod optimizer;
pub mod parallel;
pub mod pdp;
pub mod scale;
pub mod scratch;
pub mod selection;
pub mod transfer;

/// Re-exports of the most used items.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::crossval::{cross_validate, cross_validate_threaded, CrossValReport, KFold};
    pub use crate::grid::{grid_search, grid_search_threaded, GridPoint, GridSpec};
    pub use crate::loss::Loss;
    pub use crate::matrix::Matrix;
    pub use crate::network::{NetworkConfig, NeuralNetwork};
    pub use crate::optimizer::OptimizerKind;
    pub use crate::parallel::default_threads;
    pub use crate::pdp::partial_dependence;
    pub use crate::scale::StandardScaler;
    pub use crate::scratch::Scratch;
    pub use crate::selection::{forward_selection, forward_selection_threaded, SelectionResult};
}

pub use activation::Activation;
pub use crossval::{cross_validate, cross_validate_threaded, CrossValReport, KFold};
pub use grid::{grid_search, grid_search_threaded, GridPoint, GridSpec};
pub use loss::Loss;
pub use matrix::Matrix;
pub use network::{NetworkConfig, NeuralNetwork};
pub use optimizer::OptimizerKind;
pub use scale::StandardScaler;
pub use scratch::Scratch;
pub use selection::{forward_selection, forward_selection_threaded, SelectionResult};
