//! Hyperparameter grid search — the paper's Table 2.
//!
//! The grid covers optimizer × loss × epochs × neurons × L2 × layers
//! (3·3·3·3·4·4 = 1296 configurations in the paper). Each configuration is
//! scored by k-fold cross-validation; the lowest validation MSE wins.

use crate::crossval::cross_validate_with;
use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::network::NetworkConfig;
use crate::optimizer::OptimizerKind;
use crate::parallel::{default_threads, parallel_map};
use serde::{Deserialize, Serialize};

/// The search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Optimizer candidates.
    pub optimizers: Vec<OptimizerKind>,
    /// Loss candidates.
    pub losses: Vec<Loss>,
    /// Epoch counts.
    pub epochs: Vec<usize>,
    /// Hidden-layer widths.
    pub neurons: Vec<usize>,
    /// L2 strengths.
    pub l2s: Vec<f64>,
    /// Hidden-layer counts.
    pub layers: Vec<usize>,
}

impl GridSpec {
    /// The paper's full Table-2 grid (1296 points).
    pub fn paper() -> Self {
        GridSpec {
            optimizers: OptimizerKind::paper_grid().to_vec(),
            losses: Loss::ALL.to_vec(),
            epochs: vec![200, 500, 1000],
            neurons: vec![64, 128, 256],
            l2s: vec![0.0, 0.0001, 0.001, 0.01],
            layers: vec![2, 3, 4, 5],
        }
    }

    /// A reduced grid for smoke tests and quick runs: one axis value away
    /// from the paper's selected point in each dimension.
    pub fn reduced() -> Self {
        GridSpec {
            optimizers: vec![OptimizerKind::Adam { lr: 0.001 }, OptimizerKind::Sgd { lr: 0.01 }],
            losses: vec![Loss::Mape, Loss::Mse],
            epochs: vec![100],
            neurons: vec![64, 128],
            l2s: vec![0.0, 0.01],
            layers: vec![2, 4],
        }
    }

    /// All configurations in the grid, in deterministic order.
    pub fn configurations(&self) -> Vec<NetworkConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &optimizer in &self.optimizers {
            for &loss in &self.losses {
                for &epochs in &self.epochs {
                    for &neurons in &self.neurons {
                        for &l2 in &self.l2s {
                            for &hidden_layers in &self.layers {
                                out.push(NetworkConfig {
                                    hidden_layers,
                                    neurons,
                                    loss,
                                    optimizer,
                                    l2,
                                    epochs,
                                    ..NetworkConfig::default()
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The number of grid points.
    pub fn len(&self) -> usize {
        self.optimizers.len()
            * self.losses.len()
            * self.epochs.len()
            * self.neurons.len()
            * self.l2s.len()
            * self.layers.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// The configuration evaluated.
    pub config: NetworkConfig,
    /// Cross-validated MSE (the selection criterion).
    pub mse: f64,
    /// Cross-validated MAPE (reported alongside).
    pub mape: f64,
}

/// Evaluates every grid point with `k`-fold cross-validation and returns the
/// points sorted by ascending MSE (best first).
///
/// Runs on [`default_threads`] workers; use [`grid_search_threaded`] for an
/// explicit thread count. The result is bit-identical for every thread
/// count: each configuration's cross-validation derives all of its seeds
/// from `(seed, iteration, fold)` alone.
///
/// # Panics
///
/// Panics if the grid is empty.
pub fn grid_search(
    x: &Matrix,
    y: &Matrix,
    spec: &GridSpec,
    k: usize,
    seed: u64,
) -> Vec<GridPoint> {
    grid_search_threaded(x, y, spec, k, seed, default_threads())
}

/// [`grid_search`] with the grid points fanned out over `threads` workers.
///
/// Each worker evaluates whole configurations serially, reusing one
/// [`crate::Scratch`] training workspace across all configurations it
/// claims; results land in grid order and are sorted once at the end, so
/// the output is **bit-identical** to the serial run (pinned by the
/// determinism suite and a CI smoke run).
///
/// # Panics
///
/// Panics if the grid is empty or `threads` is zero.
pub fn grid_search_threaded(
    x: &Matrix,
    y: &Matrix,
    spec: &GridSpec,
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<GridPoint> {
    let configs = spec.configurations();
    assert!(!configs.is_empty(), "grid has no configurations");
    let mut points = parallel_map(threads, configs.len(), |i, scratch| {
        let config = configs[i];
        let report = cross_validate_with(x, y, &config, k, 1, seed, scratch);
        GridPoint {
            config,
            mse: report.mse,
            mape: report.mape,
        }
    });
    points.sort_unstable_by(|a, b| a.mse.total_cmp(&b.mse));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizeless_engine::RngStream;

    #[test]
    fn paper_grid_has_1296_points() {
        let g = GridSpec::paper();
        assert_eq!(g.len(), 1296);
        assert_eq!(g.configurations().len(), 1296);
        assert!(!g.is_empty());
    }

    #[test]
    fn configurations_cover_all_axes() {
        let g = GridSpec::reduced();
        let configs = g.configurations();
        assert_eq!(configs.len(), g.len());
        assert!(configs.iter().any(|c| c.hidden_layers == 2));
        assert!(configs.iter().any(|c| c.hidden_layers == 4));
        assert!(configs.iter().any(|c| c.loss == Loss::Mape));
        assert!(configs.iter().any(|c| c.l2 == 0.01));
    }

    #[test]
    fn grid_search_ranks_by_mse() {
        // Tiny grid + tiny learnable dataset: checks ordering, not accuracy.
        let mut rng = RngStream::from_seed(1, "grid-data");
        let n = 60;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.1, 1.0);
            xs.push(a);
            ys.push(2.0 * a + 0.5);
        }
        let x = Matrix::from_vec(n, 1, xs);
        let y = Matrix::from_vec(n, 1, ys);
        let spec = GridSpec {
            optimizers: vec![OptimizerKind::Adam { lr: 0.005 }],
            losses: vec![Loss::Mse],
            epochs: vec![30],
            neurons: vec![8, 16],
            l2s: vec![0.0],
            layers: vec![1, 2],
        };
        let points = grid_search(&x, &y, &spec, 3, 2);
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(w[0].mse <= w[1].mse, "not sorted");
        }
    }

    /// One worker or four, the ranked grid must come out bit-identical.
    #[test]
    fn parallel_grid_search_is_bit_identical_to_serial() {
        let mut rng = RngStream::from_seed(4, "grid-par");
        let n = 40;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.1, 1.0);
            xs.push(a);
            ys.push(a + 0.3);
        }
        let x = Matrix::from_vec(n, 1, xs);
        let y = Matrix::from_vec(n, 1, ys);
        let spec = GridSpec {
            optimizers: vec![OptimizerKind::Adam { lr: 0.005 }, OptimizerKind::Sgd { lr: 0.01 }],
            losses: vec![Loss::Mse],
            epochs: vec![15],
            neurons: vec![4, 8],
            l2s: vec![0.0],
            layers: vec![1],
        };
        let serial = grid_search_threaded(&x, &y, &spec, 3, 5, 1);
        let parallel = grid_search_threaded(&x, &y, &spec, 3, 5, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.mse.to_bits(), b.mse.to_bits());
            assert_eq!(a.mape.to_bits(), b.mape.to_bits());
        }
    }
}
