//! Transfer learning: freeze the early layers, retrain the rest.
//!
//! The paper's limitations section proposes exactly this for model
//! longevity: "one could explore transfer learning techniques that freeze
//! the initial layers of our model and retrain only with a much smaller new
//! dataset" after a provider-side change invalidates the model.

use crate::layer::Dense;
use crate::matrix::Matrix;
use crate::network::NeuralNetwork;
use crate::scratch::Scratch;
use sizeless_engine::RngStream;

impl NeuralNetwork {
    /// Fine-tunes this trained network on a (typically much smaller) new
    /// dataset, keeping the first `frozen_layers` layers fixed.
    ///
    /// Frozen layers still participate in the forward pass; only the
    /// remaining layers receive optimizer updates. Training runs for
    /// `epochs` epochs with the network's configured loss, batch size, and
    /// L2.
    ///
    /// # Panics
    ///
    /// Panics if `frozen_layers` is not smaller than the number of layers,
    /// or on dataset shape mismatch.
    pub fn fine_tune(&mut self, x: &Matrix, y: &Matrix, frozen_layers: usize, epochs: usize) {
        self.fine_tune_with(x, y, frozen_layers, epochs, 0, &mut Scratch::new());
    }

    /// The streaming entry point behind [`NeuralNetwork::fine_tune`]: one
    /// fine-tuning *round* over `(x, y)` with a caller-owned [`Scratch`]
    /// workspace, for adapters that feed small observation batches as they
    /// arrive (e.g. an online sizing control plane digesting post-resize
    /// windows).
    ///
    /// `round` salts the shuffle stream so successive rounds visit their
    /// batches in fresh orders while staying fully deterministic: the same
    /// `(network seed, round)` pair always shuffles identically, and round 0
    /// is bit-identical to [`NeuralNetwork::fine_tune`]. The scratch
    /// workspace is reused across rounds — after the first round at a given
    /// shape, a round performs zero matrix allocations.
    ///
    /// # Panics
    ///
    /// Panics if `frozen_layers` is not smaller than the number of layers,
    /// or on dataset shape mismatch.
    pub fn fine_tune_with(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        frozen_layers: usize,
        epochs: usize,
        round: u64,
        scratch: &mut Scratch,
    ) {
        let total_layers = self.layer_count();
        assert!(
            frozen_layers < total_layers,
            "must leave at least one trainable layer ({frozen_layers} >= {total_layers})"
        );
        assert_eq!(x.rows(), y.rows(), "x and y row counts differ");
        assert_eq!(x.cols(), self.input_dim(), "x column count mismatch");
        assert_eq!(y.cols(), self.output_dim(), "y column count mismatch");
        assert!(x.rows() > 0, "cannot fine-tune on an empty dataset");

        let config = *self.config();
        // Golden-ratio round salt keeps round 0 on the historical stream.
        let salt = round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut shuffle_rng = RngStream::from_seed(self.seed() ^ 0xF17E ^ salt, "nn-finetune");
        let mut order: Vec<usize> = (0..x.rows()).collect();

        for _ in 0..epochs {
            shuffle_rng.shuffle(&mut order);
            for chunk in order.chunks(config.batch_size) {
                x.select_rows_into(chunk, &mut scratch.xb);
                y.select_rows_into(chunk, &mut scratch.yb);
                // Frozen layers participate in the forward pass; the
                // backward pass stops at the first trainable layer.
                let _ = self.train_batch(scratch, frozen_layers);
            }
        }
    }
}

// Accessors used by fine-tuning live here so `network.rs` stays focused on
// the standard training loop.
impl NeuralNetwork {
    /// The number of layers (hidden + output).
    pub fn layer_count(&self) -> usize {
        self.layers_ref().len()
    }

    pub(crate) fn layers_ref(&self) -> &[Dense] {
        // SAFETY-free accessor defined in network.rs via pub(crate) field
        // visibility; forwarded here for the transfer module.
        self.layers_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::network::NetworkConfig;

    fn dataset(slope: f64, n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = RngStream::from_seed(seed, "transfer-data");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.1, 1.0);
            xs.push(a);
            ys.push(slope * a + 0.2);
        }
        (Matrix::from_vec(n, 1, xs), Matrix::from_vec(n, 1, ys))
    }

    fn config() -> NetworkConfig {
        NetworkConfig {
            hidden_layers: 3,
            neurons: 24,
            loss: Loss::Mse,
            l2: 0.0,
            epochs: 250,
            batch_size: 16,
            ..NetworkConfig::default()
        }
    }

    #[test]
    fn fine_tuning_adapts_to_a_shifted_task() {
        // Train on slope 2, then the "platform changes" to slope 3.
        let (x_old, y_old) = dataset(2.0, 200, 1);
        let (x_new, y_new) = dataset(3.0, 40, 2); // much smaller new dataset
        let mut net = NeuralNetwork::new(1, 1, &config(), 3);
        net.fit(&x_old, &y_old);
        let before = Loss::Mse.value(&y_new, &net.predict(&x_new));

        net.fine_tune(&x_new, &y_new, 1, 150);
        let after = Loss::Mse.value(&y_new, &net.predict(&x_new));
        assert!(
            after < before * 0.3,
            "fine-tuning should adapt: before {before:.4}, after {after:.4}"
        );
    }

    #[test]
    fn frozen_layers_do_not_change() {
        let (x, y) = dataset(2.0, 100, 4);
        let mut net = NeuralNetwork::new(1, 1, &config(), 5);
        net.fit(&x, &y);
        let frozen_before = net.layers_ref()[0].weights().clone();
        let last_before = net.layers_ref()[net.layer_count() - 1].weights().clone();

        let (x2, y2) = dataset(3.0, 30, 6);
        net.fine_tune(&x2, &y2, 2, 50);

        assert_eq!(
            net.layers_ref()[0].weights(),
            &frozen_before,
            "frozen layer must not move"
        );
        assert_ne!(
            net.layers_ref()[net.layer_count() - 1].weights(),
            &last_before,
            "trainable layer must move"
        );
    }

    #[test]
    fn fine_tuning_with_small_data_beats_training_from_scratch_on_it() {
        // The motivation for transfer learning: 30 new samples are too few
        // to train from scratch but enough to adapt a pretrained model.
        let (x_old, y_old) = dataset(2.0, 300, 7);
        let (x_new, y_new) = dataset(2.6, 30, 8);
        let (x_eval, y_eval) = dataset(2.6, 200, 9);

        let mut pretrained = NeuralNetwork::new(1, 1, &config(), 10);
        pretrained.fit(&x_old, &y_old);
        pretrained.fine_tune(&x_new, &y_new, 1, 120);
        let transfer_err = Loss::Mse.value(&y_eval, &pretrained.predict(&x_eval));

        let mut scratch = NeuralNetwork::new(
            1,
            1,
            &NetworkConfig {
                epochs: 120,
                ..config()
            },
            11,
        );
        scratch.fit(&x_new, &y_new);
        let scratch_err = Loss::Mse.value(&y_eval, &scratch.predict(&x_eval));

        assert!(
            transfer_err < scratch_err,
            "transfer {transfer_err:.5} vs scratch {scratch_err:.5}"
        );
    }

    #[test]
    fn round_zero_matches_fine_tune_and_rounds_are_deterministic() {
        let (x_old, y_old) = dataset(2.0, 120, 20);
        let (x_new, y_new) = dataset(2.8, 24, 21);
        let mut base = NeuralNetwork::new(1, 1, &config(), 22);
        base.fit(&x_old, &y_old);

        let mut a = base.clone();
        a.fine_tune(&x_new, &y_new, 1, 20);
        let mut b = base.clone();
        b.fine_tune_with(&x_new, &y_new, 1, 20, 0, &mut Scratch::new());
        assert_eq!(a, b, "round 0 must be bit-identical to fine_tune");

        // Successive rounds with a shared scratch replay bit-identically.
        let run = || {
            let mut net = base.clone();
            let mut scratch = Scratch::new();
            for round in 0..3u64 {
                net.fine_tune_with(&x_new, &y_new, 1, 8, round, &mut scratch);
            }
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one trainable layer")]
    fn freezing_everything_panics() {
        let (x, y) = dataset(2.0, 20, 12);
        let mut net = NeuralNetwork::new(1, 1, &config(), 13);
        net.fit(&x, &y);
        net.fine_tune(&x, &y, net.layer_count(), 10);
    }
}
