//! A minimal row-major matrix.
//!
//! Only the operations the training loop needs, implemented on a flat
//! `Vec<f64>` with cache-friendly loops. No BLAS, no unsafe.
//!
//! # Fused, allocation-free kernels
//!
//! The training hot path goes through the `*_into` kernels —
//! [`Matrix::matmul_into`], [`Matrix::matmul_transpose_a_into`] (`Aᵀ·B`
//! without materializing `Aᵀ`), and [`Matrix::matmul_transpose_b_into`]
//! (`A·Bᵀ` likewise) — which write into a caller-owned output matrix whose
//! allocation is reused across calls. All three use a register-tiled
//! microkernel ([`MR`]`×`[`NR`] accumulators held in registers) so the
//! active slice of the right-hand operand (`n × NR × 8` bytes per column
//! chunk) stays L1-resident while the inner loop streams over `k`.
//!
//! Every kernel accumulates each output element as a single chain of adds
//! in ascending-`k` order — exactly the order of the textbook triple loop —
//! so the fused kernels are **bit-identical** to the naive reference (a
//! property-tested guarantee; see `tests/properties.rs`).

use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;

/// Rows of `A` processed per microkernel tile (remainder tile).
const MR: usize = 4;
/// Rows of `A` processed per wide microkernel tile: 8 rows × NR columns of
/// independent FMA chains fully hide the FMA latency.
const MR2: usize = 8;
/// Output columns processed per microkernel tile (two AVX2 lanes of f64,
/// one AVX-512 lane; `n × NR` doubles of the B operand stay L1-resident).
const NR: usize = 8;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        // lint: allow(panic003) reason="non-empty asserted on the line above"
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape does not match data length");
        Matrix { rows, cols, data }
    }

    /// He-initialized random matrix (for ReLU layers).
    pub fn he_init(rows: usize, cols: usize, rng: &mut RngStream) -> Self {
        let std = (2.0 / rows as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.standard_normal() * std)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Extracts column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Builds a new matrix from a subset of rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// Copies a subset of rows into `out`, reusing its allocation.
    ///
    /// The allocation-free counterpart of [`Matrix::select_rows`] used by
    /// the mini-batch training loop.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        for &r in indices {
            out.data.extend_from_slice(self.row(r));
        }
    }

    /// Builds a new matrix from a subset of columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Reshapes for a kernel that fully overwrites every element: reuses
    /// the allocation and skips the zero-fill (old values may briefly
    /// persist but are never read). This is the entry point every `*_into`
    /// kernel uses to size its output — after the first call at a given
    /// shape it neither allocates nor touches memory it won't overwrite.
    pub(crate) fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        if self.data.len() != rows * cols {
            self.data.clear();
            self.data.resize(rows * cols, 0.0);
        }
    }

    /// Matrix product `self × other`.
    ///
    /// Allocates the output; the hot path uses [`Matrix::matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `out = self × other`, allocation-free after warmup.
    ///
    /// `out` is reshaped (reusing its allocation) and fully overwritten.
    /// Accumulation per output element is a single ascending-`k` chain, so
    /// the result is bit-identical to the textbook triple loop. NaN and Inf
    /// propagate through zero operands per IEEE 754 (`0 × NaN = NaN`).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_neural::Matrix;
    ///
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
    /// let mut out = Matrix::zeros(0, 0); // reused across calls
    /// a.matmul_into(&b, &mut out);
    /// assert_eq!(out, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    /// ```
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch ({}x{} × {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n, p) = (self.rows, self.cols, other.cols);
        out.resize_for_overwrite(m, p);
        let b = &other.data;
        // Register tiles of MR2 (then MR, then 1) rows × NR columns: many
        // independent ascending-k accumulator chains hide the FMA latency
        // without changing the summation order of any single element.
        let mut i = 0;
        while i + MR2 <= m {
            let a_rows: [&[f64]; MR2] =
                std::array::from_fn(|r| &self.data[(i + r) * n..(i + r + 1) * n]);
            mm_block(&a_rows, b, &mut out.data, i, n, p);
            i += MR2;
        }
        while i + MR <= m {
            let a_rows: [&[f64]; MR] =
                std::array::from_fn(|r| &self.data[(i + r) * n..(i + r + 1) * n]);
            mm_block(&a_rows, b, &mut out.data, i, n, p);
            i += MR;
        }
        while i < m {
            let a_rows = [&self.data[i * n..(i + 1) * n]];
            mm_block(&a_rows, b, &mut out.data, i, n, p);
            i += 1;
        }
    }

    /// Fused `out = selfᵀ × other` without materializing the transpose.
    ///
    /// `self` is `m × n`, `other` is `m × p`, `out` becomes `n × p`. Both
    /// operands are read row-wise (contiguously); the result is
    /// bit-identical to `self.transpose().matmul(other)`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_neural::Matrix;
    ///
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
    /// let mut out = Matrix::zeros(0, 0);
    /// a.matmul_transpose_a_into(&b, &mut out); // Aᵀ·B
    /// assert_eq!(out, a.transpose().matmul(&b));
    /// ```
    pub fn matmul_transpose_a_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a dimension mismatch ({}x{})ᵀ × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (depth, n, p) = (self.rows, self.cols, other.cols);
        out.resize_for_overwrite(n, p);
        // A[k][i..i+R] is contiguous: the transpose is never formed, yet
        // every load walks forward in memory.
        let mut i = 0;
        while i + MR2 <= n {
            mm_t_a_block::<MR2>(&self.data, &other.data, &mut out.data, i, depth, n, p);
            i += MR2;
        }
        while i + MR <= n {
            mm_t_a_block::<MR>(&self.data, &other.data, &mut out.data, i, depth, n, p);
            i += MR;
        }
        while i < n {
            mm_t_a_block::<1>(&self.data, &other.data, &mut out.data, i, depth, n, p);
            i += 1;
        }
    }

    /// Fused `out = self × otherᵀ` without materializing the transpose.
    ///
    /// `self` is `m × n`, `other` is `p × n`, `out` becomes `m × p`. Every
    /// output element is a dot product of two contiguous rows, accumulated
    /// in ascending-`k` order — bit-identical to
    /// `self.matmul(&other.transpose())`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_neural::Matrix;
    ///
    /// let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
    /// let b = Matrix::from_rows(&[&[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
    /// let mut out = Matrix::zeros(0, 0);
    /// a.matmul_transpose_b_into(&b, &mut out); // A·Bᵀ
    /// assert_eq!(out, a.matmul(&b.transpose()));
    /// ```
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b dimension mismatch {}x{} × ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n, p) = (self.rows, self.cols, other.rows);
        out.resize_for_overwrite(m, p);
        let mut i = 0;
        // MR×MR dot-product tile: 16 independent ascending-k chains keep
        // the FP ports busy, and each A-row load is shared by MR columns.
        while i + MR <= m {
            let a_rows = [
                &self.data[i * n..(i + 1) * n],
                &self.data[(i + 1) * n..(i + 2) * n],
                &self.data[(i + 2) * n..(i + 3) * n],
                &self.data[(i + 3) * n..(i + 4) * n],
            ];
            let mut j = 0;
            while j + MR <= p {
                let b_rows = [
                    &other.data[j * n..(j + 1) * n],
                    &other.data[(j + 1) * n..(j + 2) * n],
                    &other.data[(j + 2) * n..(j + 3) * n],
                    &other.data[(j + 3) * n..(j + 4) * n],
                ];
                let mut acc = [[0.0f64; MR]; MR];
                for k in 0..n {
                    // lint: allow(panic003) reason="b_rows is a fixed four-element array built just above; indices 0..=3 are in bounds"
                    let bs = [b_rows[0][k], b_rows[1][k], b_rows[2][k], b_rows[3][k]];
                    for (acc_r, a_r) in acc.iter_mut().zip(&a_rows) {
                        let av = a_r[k];
                        for (o, &bv) in acc_r.iter_mut().zip(&bs) {
                            *o = av.mul_add(bv, *o);
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    out.data[(i + r) * p + j..(i + r) * p + j + MR].copy_from_slice(acc_r);
                }
                j += MR;
            }
            while j < p {
                let b_row = &other.data[j * n..(j + 1) * n];
                let mut acc = [0.0f64; MR];
                for k in 0..n {
                    let bv = b_row[k];
                    for (o, a_r) in acc.iter_mut().zip(&a_rows) {
                        *o = a_r[k].mul_add(bv, *o);
                    }
                }
                for (r, &v) in acc.iter().enumerate() {
                    out.data[(i + r) * p + j] = v;
                }
                j += 1;
            }
            i += MR;
        }
        while i < m {
            let a_row = &self.data[i * n..(i + 1) * n];
            for j in 0..p {
                let b_row = &other.data[j * n..(j + 1) * n];
                let mut sum = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    sum = av.mul_add(bv, sum);
                }
                out.data[i * p + j] = sum;
            }
            i += 1;
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a reusable buffer (allocation-free after warmup).
    ///
    /// The backward pass uses this to stage `Wᵀ` in scratch once per
    /// layer per batch: the FMA-vectorized [`Matrix::matmul_into`] on the
    /// staged transpose outpaces the gather-bound `A·Bᵀ` dot-product form
    /// for the training shapes, and the result is bit-identical.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize_for_overwrite(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length must match columns");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Column sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.column_sums_into(&mut out);
        out
    }

    /// Column sums written into a reusable buffer.
    pub fn column_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for row in self.data.chunks_exact(self.cols) {
            for (acc, x) in out.iter_mut().zip(row) {
                *acc += x;
            }
        }
    }

    /// `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Vertically stacks two matrices.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}


/// The `R × NR` microkernel of [`Matrix::matmul_into`]: computes output
/// rows `i..i+R` from `R` row slices of `A` and the flat data of `B`
/// (`n × p`). Each output element is one ascending-`k` fused-multiply-add
/// chain; `R` chains per column run independently for ILP.
#[inline]
fn mm_block<const R: usize>(
    a_rows: &[&[f64]; R],
    b: &[f64],
    out: &mut [f64],
    i: usize,
    n: usize,
    p: usize,
) {
    let mut jb = 0;
    while jb + NR <= p {
        let mut acc = [[0.0f64; NR]; R];
        for k in 0..n {
            let b_row: &[f64; NR] = b[k * p + jb..k * p + jb + NR]
                .try_into()
                // lint: allow(panic002) reason="the while condition guarantees jb + NR <= p, so the slice is exactly NR long"
                .expect("NR-sized chunk");
            for (acc_r, a_r) in acc.iter_mut().zip(a_rows) {
                let x = a_r[k];
                for (o, &bv) in acc_r.iter_mut().zip(b_row) {
                    *o = x.mul_add(bv, *o);
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            out[(i + r) * p + jb..(i + r) * p + jb + NR].copy_from_slice(acc_r);
        }
        jb += NR;
    }
    for j in jb..p {
        let mut acc = [0.0f64; R];
        for k in 0..n {
            let bv = b[k * p + j];
            for (o, a_r) in acc.iter_mut().zip(a_rows) {
                *o = a_r[k].mul_add(bv, *o);
            }
        }
        for (r, &v) in acc.iter().enumerate() {
            out[(i + r) * p + j] = v;
        }
    }
}

/// The `R × NR` microkernel of [`Matrix::matmul_transpose_a_into`]:
/// computes output rows `i..i+R` of `Aᵀ·B` reading `A` (`depth × n`) and
/// `B` (`depth × p`) row-wise. Same ascending-`k` chains as [`mm_block`].
#[inline]
fn mm_t_a_block<const R: usize>(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    i: usize,
    depth: usize,
    n: usize,
    p: usize,
) {
    let mut jb = 0;
    while jb + NR <= p {
        let mut acc = [[0.0f64; NR]; R];
        for k in 0..depth {
            let a_chunk: &[f64; R] = a[k * n + i..k * n + i + R]
                .try_into()
                // lint: allow(panic002) reason="the caller advances i in full R-column steps, so the slice is exactly R long"
                .expect("R-sized chunk");
            let b_row: &[f64; NR] = b[k * p + jb..k * p + jb + NR]
                .try_into()
                // lint: allow(panic002) reason="the while condition guarantees jb + NR <= p, so the slice is exactly NR long"
                .expect("NR-sized chunk");
            for (acc_r, &x) in acc.iter_mut().zip(a_chunk) {
                for (o, &bv) in acc_r.iter_mut().zip(b_row) {
                    *o = x.mul_add(bv, *o);
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            out[(i + r) * p + jb..(i + r) * p + jb + NR].copy_from_slice(acc_r);
        }
        jb += NR;
    }
    for j in jb..p {
        let mut acc = [0.0f64; R];
        for k in 0..depth {
            let bv = b[k * p + j];
            for (r, o) in acc.iter_mut().enumerate() {
                *o = a[k * n + i + r].mul_add(bv, *o);
            }
        }
        for (r, &v) in acc.iter().enumerate() {
            out[(i + r) * p + j] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[5.0], &[3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 7.0);
        assert_eq!((c.rows(), c.cols()), (1, 1));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn broadcast_and_hadamard() {
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m, Matrix::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]));
        let mask = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        m.hadamard_inplace(&mask);
        assert_eq!(m, Matrix::from_rows(&[&[11.0, 0.0], &[0.0, 22.0]]));
    }

    #[test]
    fn column_sums_and_add_scaled() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.column_sums(), vec![4.0, 6.0]);
        let mut acc = Matrix::zeros(2, 2);
        acc.add_scaled(&m, 0.5);
        assert_eq!(acc.get(1, 1), 2.0);
    }

    #[test]
    fn row_and_column_selection() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let rows = m.select_rows(&[2, 0]);
        assert_eq!(rows, Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]]));
        let cols = m.select_columns(&[1]);
        assert_eq!(cols.column(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.vstack(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn he_init_statistics() {
        let mut rng = RngStream::from_seed(1, "he");
        let m = Matrix::he_init(100, 100, &mut rng);
        let mean = m.data().iter().sum::<f64>() / 10_000.0;
        let var = m.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 0.02).abs() < 0.005, "var={var}");
    }

    /// Regression: a zero row must not short-circuit NaN/Inf propagation —
    /// `0 × NaN = NaN` per IEEE 754. The old kernel skipped zero elements
    /// of the left operand and silently produced `0.0` here.
    #[test]
    fn nan_propagates_through_zero_rows() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let b = Matrix::from_rows(&[&[f64::NAN, 2.0], &[3.0, f64::INFINITY]]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0×NaN row must stay NaN");
        assert!(c.get(0, 1).is_nan(), "0×Inf must poison the sum");
        assert!(c.get(1, 0).is_nan(), "NaN from the non-zero path");
    }

    fn random_matrix(rows: usize, cols: usize, rng: &mut RngStream) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.uniform(-2.0, 2.0)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// The textbook triple loop: the bit-exactness reference for all fused
    /// kernels (ascending-k single-chain accumulation per element).
    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut sum = 0.0;
                for k in 0..a.cols() {
                    sum = a.get(i, k).mul_add(b.get(k, j), sum);
                }
                out.set(i, j, sum);
            }
        }
        out
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} != {y}");
        }
    }

    /// Tile-edge coverage: shapes around the MR×NR microkernel boundaries
    /// must all agree bit-for-bit with the reference.
    #[test]
    fn fused_kernels_match_reference_at_tile_edges() {
        let mut rng = RngStream::from_seed(9, "kernel-edges");
        for &(m, n, p) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (8, 3, 9),
            (12, 16, 24),
            (13, 2, 31),
        ] {
            let a = random_matrix(m, n, &mut rng);
            let b = random_matrix(n, p, &mut rng);
            let mut out = Matrix::zeros(0, 0);
            a.matmul_into(&b, &mut out);
            assert_bits_eq(&out, &reference_matmul(&a, &b));

            let at = random_matrix(n, m, &mut rng);
            at.matmul_transpose_a_into(&b, &mut out);
            assert_bits_eq(&out, &reference_matmul(&at.transpose(), &b));

            let bt = random_matrix(p, n, &mut rng);
            a.matmul_transpose_b_into(&bt, &mut out);
            assert_bits_eq(&out, &reference_matmul(&a, &bt.transpose()));
        }
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = Matrix::zeros(0, 0);
        m.select_rows_into(&[2, 0], &mut out);
        assert_eq!(out, m.select_rows(&[2, 0]));
    }

    #[test]
    fn column_sums_into_matches_column_sums() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut buf = vec![9.0; 7];
        m.column_sums_into(&mut buf);
        assert_eq!(buf, m.column_sums());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
