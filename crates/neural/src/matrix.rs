//! A minimal row-major matrix.
//!
//! Only the operations the training loop needs, implemented on a flat
//! `Vec<f64>` with cache-friendly loops. No BLAS, no unsafe.

use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape does not match data length");
        Matrix { rows, cols, data }
    }

    /// He-initialized random matrix (for ReLU layers).
    pub fn he_init(rows: usize, cols: usize, rng: &mut RngStream) -> Self {
        let std = (2.0 / rows as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.standard_normal() * std)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Extracts column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Builds a new matrix from a subset of rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// Builds a new matrix from a subset of columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch ({}x{} × {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: the inner loop walks contiguous memory.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length must match columns");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Column sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (acc, x) in out.iter_mut().zip(row) {
                *acc += x;
            }
        }
        out
    }

    /// `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Vertically stacks two matrices.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[5.0], &[3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 7.0);
        assert_eq!((c.rows(), c.cols()), (1, 1));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn broadcast_and_hadamard() {
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m, Matrix::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]));
        let mask = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        m.hadamard_inplace(&mask);
        assert_eq!(m, Matrix::from_rows(&[&[11.0, 0.0], &[0.0, 22.0]]));
    }

    #[test]
    fn column_sums_and_add_scaled() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.column_sums(), vec![4.0, 6.0]);
        let mut acc = Matrix::zeros(2, 2);
        acc.add_scaled(&m, 0.5);
        assert_eq!(acc.get(1, 1), 2.0);
    }

    #[test]
    fn row_and_column_selection() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let rows = m.select_rows(&[2, 0]);
        assert_eq!(rows, Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]]));
        let cols = m.select_columns(&[1]);
        assert_eq!(cols.column(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.vstack(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn he_init_statistics() {
        let mut rng = RngStream::from_seed(1, "he");
        let m = Matrix::he_init(100, 100, &mut rng);
        let mean = m.data().iter().sum::<f64>() / 10_000.0;
        let var = m.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 0.02).abs() < 0.005, "var={var}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
