//! Partial dependence plots — the explainability tool behind Figure 5.
//!
//! The partial dependence of a model on feature *j* at value *v* is the mean
//! prediction over the dataset with every row's feature *j* replaced by *v*
//! (Goldstein et al., 2015). The paper uses these plots to show that CPU
//! utilization, network activity, and heap usage drive the predicted
//! speedups.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// One grid point of a partial dependence curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdpPoint {
    /// The substituted feature value.
    pub feature_value: f64,
    /// Mean model prediction per output target.
    pub mean_predictions: Vec<f64>,
}

/// Computes the partial dependence of `predict` on feature `feature` over
/// `grid_points` evenly spaced values spanning the observed range of that
/// feature in `x`.
///
/// `predict` maps an input matrix to an output matrix (rows aligned).
///
/// # Panics
///
/// Panics if `grid_points < 2`, the feature index is out of range, or `x`
/// is empty.
pub fn partial_dependence(
    predict: impl Fn(&Matrix) -> Matrix,
    x: &Matrix,
    feature: usize,
    grid_points: usize,
) -> Vec<PdpPoint> {
    assert!(grid_points >= 2, "need at least two grid points");
    assert!(feature < x.cols(), "feature index out of range");
    assert!(x.rows() > 0, "empty dataset");

    let col = x.column(feature);
    let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let mut out = Vec::with_capacity(grid_points);
    for g in 0..grid_points {
        let v = if hi > lo {
            lo + (hi - lo) * g as f64 / (grid_points - 1) as f64
        } else {
            lo
        };
        let mut x_mod = x.clone();
        for r in 0..x_mod.rows() {
            x_mod.set(r, feature, v);
        }
        let pred = predict(&x_mod);
        let n = pred.rows() as f64;
        let mean_predictions: Vec<f64> = (0..pred.cols())
            .map(|c| pred.column(c).iter().sum::<f64>() / n)
            .collect();
        out.push(PdpPoint {
            feature_value: v,
            mean_predictions,
        });
    }
    out
}

/// The overall influence of a feature: the range (max − min) of its partial
/// dependence curve, summed over output targets. Used to pick the "most
/// impactful" features shown in Figure 5.
pub fn pdp_influence(curve: &[PdpPoint]) -> f64 {
    if curve.is_empty() {
        return 0.0;
    }
    // lint: allow(panic003) reason="guarded by the is_empty early return above"
    let targets = curve[0].mean_predictions.len();
    (0..targets)
        .map(|t| {
            let vals: Vec<f64> = curve.iter().map(|p| p.mean_predictions[t]).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transparent "model": y = [2·x₀, x₁].
    fn toy_model(x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), 2);
        for r in 0..x.rows() {
            out.set(r, 0, 2.0 * x.get(r, 0));
            out.set(r, 1, x.get(r, 1));
        }
        out
    }

    fn data() -> Matrix {
        Matrix::from_rows(&[&[0.0, 5.0], &[1.0, 6.0], &[2.0, 7.0]])
    }

    #[test]
    fn pdp_recovers_linear_effect() {
        let curve = partial_dependence(toy_model, &data(), 0, 3);
        assert_eq!(curve.len(), 3);
        // Feature 0 spans [0, 2] → target 0 spans [0, 4].
        assert_eq!(curve[0].feature_value, 0.0);
        assert_eq!(curve[2].feature_value, 2.0);
        assert!((curve[0].mean_predictions[0] - 0.0).abs() < 1e-12);
        assert!((curve[2].mean_predictions[0] - 4.0).abs() < 1e-12);
        // Target 1 is unaffected by feature 0: flat at mean(x₁) = 6.
        for p in &curve {
            assert!((p.mean_predictions[1] - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn influence_ranks_features_correctly() {
        let c0 = partial_dependence(toy_model, &data(), 0, 5);
        let c1 = partial_dependence(toy_model, &data(), 1, 5);
        // Feature 0 moves target 0 by 4; feature 1 moves target 1 by 2.
        assert!(pdp_influence(&c0) > pdp_influence(&c1));
    }

    #[test]
    fn constant_feature_yields_flat_curve() {
        let x = Matrix::from_rows(&[&[3.0, 1.0], &[3.0, 2.0]]);
        let curve = partial_dependence(toy_model, &x, 0, 4);
        for p in &curve {
            assert_eq!(p.feature_value, 3.0);
        }
        assert_eq!(pdp_influence(&curve), 0.0);
    }

    #[test]
    #[should_panic(expected = "feature index out of range")]
    fn bad_feature_index_panics() {
        let _ = partial_dependence(toy_model, &data(), 9, 3);
    }
}
