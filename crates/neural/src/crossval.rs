//! k-fold cross-validation.
//!
//! The paper evaluates each base memory size with **ten iterations of
//! five-fold cross-validation with a random split** (Table 3). [`KFold`]
//! produces the splits; [`cross_validate`] trains a fresh network per fold
//! and aggregates MSE / MAPE / R² / explained variance over the held-out
//! predictions.

use crate::matrix::Matrix;
use crate::network::{NetworkConfig, NeuralNetwork};
use crate::parallel::{default_threads, parallel_map};
use crate::scratch::Scratch;
use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;
use sizeless_stats::regression;

/// A shuffled k-fold splitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KFold {
    /// Number of folds.
    pub k: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl KFold {
    /// Creates a splitter.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "cross-validation needs at least two folds");
        KFold { k, seed }
    }

    /// Produces `(train, test)` index pairs for a dataset of `n` rows.
    ///
    /// # Panics
    ///
    /// Panics if `n < k`.
    pub fn splits(&self, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(n >= self.k, "need at least one sample per fold");
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = RngStream::from_seed(self.seed, "kfold");
        rng.shuffle(&mut order);
        let mut out = Vec::with_capacity(self.k);
        let base = n / self.k;
        let extra = n % self.k;
        let mut start = 0;
        for fold in 0..self.k {
            let size = base + usize::from(fold < extra);
            let test: Vec<usize> = order[start..start + size].to_vec();
            let train: Vec<usize> = order[..start]
                .iter()
                .chain(&order[start + size..])
                .copied()
                .collect();
            out.push((train, test));
            start += size;
        }
        out
    }
}

/// Aggregated cross-validation metrics (the columns of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossValReport {
    /// Mean squared error over held-out predictions.
    pub mse: f64,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Explained variance score.
    pub explained_variance: f64,
}

/// Runs `iterations × k`-fold cross-validation of a network on `(x, y)`,
/// fanning the folds out over [`default_threads`] workers (bit-identical
/// to the serial run; see [`cross_validate_threaded`]).
///
/// Every fold trains a fresh network; held-out predictions from all folds
/// and iterations are pooled before computing the metrics, matching how the
/// paper reports a single number per base size.
///
/// # Panics
///
/// Panics if the dataset is smaller than `k` or `iterations` is zero.
pub fn cross_validate(
    x: &Matrix,
    y: &Matrix,
    config: &NetworkConfig,
    k: usize,
    iterations: usize,
    seed: u64,
) -> CrossValReport {
    cross_validate_threaded(x, y, config, k, iterations, seed, default_threads())
}

/// [`cross_validate`] with the folds fanned out over `threads` workers.
///
/// Every fold trains from a seed derived from `(seed, iteration, fold)`
/// and held-out predictions are pooled in fold order, so the report is
/// **bit-identical** for every thread count (pinned by the determinism
/// suite).
///
/// # Panics
///
/// Panics if the dataset is smaller than `k`, `iterations` is zero, or
/// `threads` is zero.
pub fn cross_validate_threaded(
    x: &Matrix,
    y: &Matrix,
    config: &NetworkConfig,
    k: usize,
    iterations: usize,
    seed: u64,
    threads: usize,
) -> CrossValReport {
    assert!(iterations > 0, "at least one iteration required");

    // Materialize the fold jobs up front, in pooling order.
    let mut jobs: Vec<(Vec<usize>, Vec<usize>, u64)> = Vec::with_capacity(iterations * k);
    for iter in 0..iterations {
        let folds = KFold::new(k, seed.wrapping_add(iter as u64)).splits(x.rows());
        for (f, (train_idx, test_idx)) in folds.into_iter().enumerate() {
            let net_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add((iter * 31 + f) as u64);
            jobs.push((train_idx, test_idx, net_seed));
        }
    }

    let fold_results = parallel_map(threads, jobs.len(), |i, scratch| {
        let (train_idx, test_idx, net_seed) = &jobs[i];
        fold_predictions(x, y, config, train_idx, test_idx, *net_seed, scratch)
    });

    pooled_report(fold_results)
}

/// Serial cross-validation reusing a caller-owned scratch workspace —
/// the inner loop of the parallel grid search, where each worker already
/// runs on its own thread.
pub(crate) fn cross_validate_with(
    x: &Matrix,
    y: &Matrix,
    config: &NetworkConfig,
    k: usize,
    iterations: usize,
    seed: u64,
    scratch: &mut Scratch,
) -> CrossValReport {
    assert!(iterations > 0, "at least one iteration required");
    let mut fold_results = Vec::with_capacity(iterations * k);
    for iter in 0..iterations {
        let folds = KFold::new(k, seed.wrapping_add(iter as u64)).splits(x.rows());
        for (f, (train_idx, test_idx)) in folds.into_iter().enumerate() {
            let net_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add((iter * 31 + f) as u64);
            fold_results.push(fold_predictions(
                x, y, config, &train_idx, &test_idx, net_seed, scratch,
            ));
        }
    }
    pooled_report(fold_results)
}

/// Trains one fold and returns `(held-out truth, held-out predictions)`.
fn fold_predictions(
    x: &Matrix,
    y: &Matrix,
    config: &NetworkConfig,
    train_idx: &[usize],
    test_idx: &[usize],
    net_seed: u64,
    scratch: &mut Scratch,
) -> (Vec<f64>, Vec<f64>) {
    let x_train = x.select_rows(train_idx);
    let y_train = y.select_rows(train_idx);
    let x_test = x.select_rows(test_idx);
    let y_test = y.select_rows(test_idx);

    let mut net = NeuralNetwork::new(x.cols(), y.cols(), config, net_seed);
    net.fit_with(&x_train, &y_train, scratch);
    let pred = net.predict(&x_test);
    (y_test.data().to_vec(), pred.data().to_vec())
}

/// Pools per-fold predictions (in fold order) into the aggregate report.
fn pooled_report(fold_results: Vec<(Vec<f64>, Vec<f64>)>) -> CrossValReport {
    let total: usize = fold_results.iter().map(|(t, _)| t.len()).sum();
    let mut all_true: Vec<f64> = Vec::with_capacity(total);
    let mut all_pred: Vec<f64> = Vec::with_capacity(total);
    for (t, p) in fold_results {
        all_true.extend_from_slice(&t);
        all_pred.extend_from_slice(&p);
    }

    CrossValReport {
        // lint: allow(panic002) reason="every fold contributes at least one prediction"
        mse: regression::mse(&all_true, &all_pred).expect("non-empty predictions"),
        // lint: allow(panic002) reason="ratio targets are clamped to at least 0.01, so no MAPE denominator is zero"
        mape: regression::mape(&all_true, &all_pred).expect("non-zero targets"),
        r_squared: regression::r_squared(&all_true, &all_pred)
            // lint: allow(panic002) reason="ratio targets vary across the dataset, so variance is non-zero"
            .expect("non-constant targets"),
        explained_variance: regression::explained_variance(&all_true, &all_pred)
            // lint: allow(panic002) reason="ratio targets vary across the dataset, so variance is non-zero"
            .expect("non-constant targets"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::Loss;
    use crate::optimizer::OptimizerKind;

    #[test]
    fn splits_partition_the_dataset() {
        let kf = KFold::new(5, 1);
        let splits = kf.splits(23);
        assert_eq!(splits.len(), 5);
        let mut seen: Vec<usize> = splits.iter().flat_map(|(_, t)| t.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        for (train, test) in &splits {
            assert_eq!(train.len() + test.len(), 23);
            for t in test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let splits = KFold::new(5, 2).splits(23);
        let sizes: Vec<usize> = splits.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        assert!(sizes.iter().all(|&s| s == 4 || s == 5));
    }

    #[test]
    fn splits_are_shuffled_and_deterministic() {
        let a = KFold::new(4, 3).splits(40);
        let b = KFold::new(4, 3).splits(40);
        let c = KFold::new(4, 4).splits(40);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Shuffled: the first test fold should not be 0..10.
        assert_ne!(a[0].1, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cross_validation_on_learnable_data_scores_well() {
        let mut rng = RngStream::from_seed(5, "cv-data");
        let n = 120;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.1, 1.0);
            let b = rng.uniform(0.1, 1.0);
            xs.extend_from_slice(&[a, b]);
            ys.extend_from_slice(&[a + b, 2.0 * a]);
        }
        let x = Matrix::from_vec(n, 2, xs);
        let y = Matrix::from_vec(n, 2, ys);
        let cfg = NetworkConfig {
            hidden_layers: 2,
            neurons: 24,
            activation: Activation::Relu,
            loss: Loss::Mse,
            optimizer: OptimizerKind::Adam { lr: 0.005 },
            l2: 0.0,
            epochs: 150,
            batch_size: 16,
        };
        let report = cross_validate(&x, &y, &cfg, 4, 1, 7);
        assert!(report.mse < 0.02, "mse={}", report.mse);
        assert!(report.r_squared > 0.9, "r2={}", report.r_squared);
        assert!(report.explained_variance >= report.r_squared - 0.05);
        assert!(report.mape < 0.2, "mape={}", report.mape);
    }

    /// The parallel fold fan-out must reproduce the serial report
    /// bit-for-bit: same fold seeds, same pooling order.
    #[test]
    fn threaded_cross_validation_is_bit_identical_to_serial() {
        let mut rng = RngStream::from_seed(9, "cv-par");
        let n = 40;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.1, 1.0);
            xs.push(a);
            ys.push(1.5 * a + 0.2);
        }
        let x = Matrix::from_vec(n, 1, xs);
        let y = Matrix::from_vec(n, 1, ys);
        let cfg = NetworkConfig {
            hidden_layers: 1,
            neurons: 8,
            loss: Loss::Mse,
            optimizer: OptimizerKind::Adam { lr: 0.01 },
            l2: 0.0,
            epochs: 20,
            batch_size: 8,
            ..NetworkConfig::default()
        };
        let serial = cross_validate(&x, &y, &cfg, 4, 2, 3);
        let parallel = cross_validate_threaded(&x, &y, &cfg, 4, 2, 3, 4);
        assert_eq!(serial.mse.to_bits(), parallel.mse.to_bits());
        assert_eq!(serial.mape.to_bits(), parallel.mape.to_bits());
        assert_eq!(serial.r_squared.to_bits(), parallel.r_squared.to_bits());
        assert_eq!(
            serial.explained_variance.to_bits(),
            parallel.explained_variance.to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k_of_one_rejected() {
        let _ = KFold::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "one sample per fold")]
    fn too_small_dataset_rejected() {
        let _ = KFold::new(5, 0).splits(3);
    }
}
