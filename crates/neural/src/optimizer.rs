//! Gradient-descent optimizers: SGD, Adam, Adagrad (the paper's grid;
//! Table 2 selects Adam).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which optimizer to use, with its learning rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam (Kingma & Ba) with the standard β₁/β₂/ε, in the Keras
    /// formulation (bias correction folded into the step size, ε outside
    /// the correction).
    Adam {
        /// Learning rate.
        lr: f64,
    },
    /// Adagrad with per-parameter accumulated squared gradients.
    Adagrad {
        /// Learning rate.
        lr: f64,
    },
}

impl OptimizerKind {
    /// The grid of the paper with Keras-default learning rates.
    pub fn paper_grid() -> [OptimizerKind; 3] {
        [
            OptimizerKind::Sgd { lr: 0.01 },
            OptimizerKind::Adam { lr: 0.001 },
            OptimizerKind::Adagrad { lr: 0.01 },
        ]
    }

    /// Instantiates per-parameter optimizer state for `n` parameters.
    pub fn state(self, n: usize) -> OptimizerState {
        match self {
            OptimizerKind::Sgd { lr } => OptimizerState::Sgd { lr },
            OptimizerKind::Adam { lr } => OptimizerState::Adam {
                lr,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                m: vec![0.0; n],
                v: vec![0.0; n],
                t: 0,
            },
            OptimizerKind::Adagrad { lr } => OptimizerState::Adagrad {
                lr,
                eps: 1e-8,
                acc: vec![0.0; n],
            },
        }
    }
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerKind::Sgd { .. } => f.write_str("SGD"),
            OptimizerKind::Adam { .. } => f.write_str("Adam"),
            OptimizerKind::Adagrad { .. } => f.write_str("Adagrad"),
        }
    }
}

/// Mutable per-parameter optimizer state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizerState {
    /// SGD needs no state.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam moment estimates.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
        /// Numerical guard.
        eps: f64,
        /// First moments.
        m: Vec<f64>,
        /// Second moments.
        v: Vec<f64>,
        /// Step counter.
        t: u64,
    },
    /// Adagrad accumulated squared gradients.
    Adagrad {
        /// Learning rate.
        lr: f64,
        /// Numerical guard.
        eps: f64,
        /// Accumulated squared gradients.
        acc: Vec<f64>,
    },
}

impl OptimizerState {
    /// Applies one update step: `params -= step(grads)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` lengths differ from the state size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        match self {
            OptimizerState::Sgd { lr } => {
                for (p, g) in params.iter_mut().zip(grads) {
                    *p -= *lr * g;
                }
            }
            OptimizerState::Adam {
                lr,
                beta1,
                beta2,
                eps,
                m,
                v,
                t,
            } => {
                assert_eq!(params.len(), m.len(), "state sized for another layer");
                *t += 1;
                // Keras folds the bias correction into the step size:
                // `α_t = lr·√(1−β₂ᵗ)/(1−β₁ᵗ)` once per step, then
                // `p -= α_t·m/(√v + ε)` per parameter — one sqrt and one
                // division per parameter instead of three divisions, which
                // matters because the (vectorized) update is div/sqrt
                // throughput-bound.
                let b1t = 1.0 - beta1.powi(*t as i32);
                let b2t = 1.0 - beta2.powi(*t as i32);
                let alpha = *lr * b2t.sqrt() / b1t;
                for (((p, &g), m_i), v_i) in
                    params.iter_mut().zip(grads).zip(m.iter_mut()).zip(v.iter_mut())
                {
                    *m_i = *beta1 * *m_i + (1.0 - *beta1) * g;
                    *v_i = *beta2 * *v_i + (1.0 - *beta2) * g * g;
                    *p -= alpha * *m_i / (v_i.sqrt() + *eps);
                }
            }
            OptimizerState::Adagrad { lr, eps, acc } => {
                assert_eq!(params.len(), acc.len(), "state sized for another layer");
                for ((p, &g), acc_i) in params.iter_mut().zip(grads).zip(acc.iter_mut()) {
                    *acc_i += g * g;
                    *p -= *lr * g / (acc_i.sqrt() + *eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All three optimizers should descend a simple quadratic f(x) = x².
    #[test]
    fn all_optimizers_descend_quadratic() {
        for kind in OptimizerKind::paper_grid() {
            let mut state = kind.state(1);
            // Adam moves ~lr per step regardless of gradient size, so give
            // every optimizer enough steps to cover the distance from 5.0.
            // Adam moves ~lr per step and Adagrad's steps shrink like 1/√k,
            // so covering the distance from 5.0 needs ~100k steps at the
            // Keras-default learning rates.
            let mut x = [5.0];
            for _ in 0..100_000 {
                let grad = [2.0 * x[0]];
                state.step(&mut x, &grad);
            }
            // Adagrad's 1/√k step decay makes it the slowest to converge;
            // reaching the basin from 5.0 is what matters here.
            assert!(x[0].abs() < 1.0, "{kind} ended at {}", x[0]);
        }
    }

    #[test]
    fn sgd_step_is_lr_times_grad() {
        let mut state = OptimizerKind::Sgd { lr: 0.1 }.state(2);
        let mut p = [1.0, 2.0];
        state.step(&mut p, &[1.0, -1.0]);
        assert!((p[0] - 0.9).abs() < 1e-12);
        assert!((p[1] - 2.1).abs() < 1e-12);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step ≈ lr regardless of
        // gradient magnitude.
        let mut state = OptimizerKind::Adam { lr: 0.001 }.state(1);
        let mut p = [0.0];
        state.step(&mut p, &[1000.0]);
        assert!((p[0] + 0.001).abs() < 1e-6, "step={}", p[0]);
    }

    #[test]
    fn adagrad_steps_shrink() {
        let mut state = OptimizerKind::Adagrad { lr: 0.5 }.state(1);
        let mut p = [0.0];
        state.step(&mut p, &[1.0]);
        let first = p[0].abs();
        let before = p[0];
        state.step(&mut p, &[1.0]);
        let second = (p[0] - before).abs();
        assert!(second < first, "first={first} second={second}");
    }

    #[test]
    fn display_names() {
        assert_eq!(OptimizerKind::Adam { lr: 0.001 }.to_string(), "Adam");
        assert_eq!(OptimizerKind::Sgd { lr: 0.01 }.to_string(), "SGD");
        assert_eq!(OptimizerKind::Adagrad { lr: 0.01 }.to_string(), "Adagrad");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut state = OptimizerKind::Sgd { lr: 0.1 }.state(1);
        let mut p = [0.0];
        state.step(&mut p, &[1.0, 2.0]);
    }
}
