//! A reusable training workspace.
//!
//! Mini-batch training needs a handful of intermediate matrices per step:
//! the batch slices, one activation matrix per layer, the backpropagated
//! gradient, and the parameter-gradient buffers. Allocating them afresh
//! every batch dominated the old hot path; a [`Scratch`] owns them all and
//! reuses their allocations across batches, epochs, folds, and even
//! networks (buffers are reshaped on the fly by the `*_into` kernels).
//!
//! [`crate::network::NeuralNetwork::fit`] creates a `Scratch` internally;
//! long-running drivers (cross-validation, grid search) hold one per worker
//! thread and pass it to
//! [`fit_with`](crate::network::NeuralNetwork::fit_with) so *zero* matrix
//! allocations happen after the first training step at a given shape.
//!
//! # Examples
//!
//! ```
//! use sizeless_neural::prelude::*;
//! use sizeless_neural::Scratch;
//!
//! let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5]]);
//! let y = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let cfg = NetworkConfig {
//!     hidden_layers: 1,
//!     neurons: 8,
//!     epochs: 200,
//!     loss: Loss::Mse,
//!     l2: 0.0,
//!     batch_size: 4,
//!     ..NetworkConfig::default()
//! };
//!
//! // One workspace, many networks: the second fit reuses every buffer.
//! let mut scratch = Scratch::new();
//! let mut net_a = NeuralNetwork::new(1, 1, &cfg, 1);
//! net_a.fit_with(&x, &y, &mut scratch);
//! let mut net_b = NeuralNetwork::new(1, 1, &cfg, 2);
//! net_b.fit_with(&x, &y, &mut scratch);
//!
//! // Results are identical to the scratch-free path.
//! let mut net_c = NeuralNetwork::new(1, 1, &cfg, 2);
//! net_c.fit(&x, &y);
//! assert_eq!(net_b.predict_one(&[0.75]), net_c.predict_one(&[0.75]));
//! ```

use crate::matrix::Matrix;

/// Reusable buffers for one training worker.
///
/// Holding a `Scratch` across [`fit_with`] calls makes mini-batch training
/// allocation-free after warmup. A `Scratch` is cheap to create (all
/// buffers start empty and grow on demand) and intentionally **not**
/// shareable between threads — each worker owns one.
///
/// [`fit_with`]: crate::network::NeuralNetwork::fit_with
#[derive(Debug)]
pub struct Scratch {
    /// Post-activation output of every layer for the current batch.
    pub(crate) acts: Vec<Matrix>,
    /// Gradient flowing backwards (∂L/∂output of the current layer).
    pub(crate) delta: Matrix,
    /// Ping-pong buffer for the gradient w.r.t. the layer input.
    pub(crate) delta_next: Matrix,
    /// Weight-gradient buffer, reshaped per layer.
    pub(crate) d_w: Matrix,
    /// Bias-gradient buffer.
    pub(crate) d_b: Vec<f64>,
    /// Staging buffer for a layer's transposed weights (`Wᵀ`).
    pub(crate) w_t: Matrix,
    /// Mini-batch slice of the inputs.
    pub(crate) xb: Matrix,
    /// Mini-batch slice of the targets.
    pub(crate) yb: Matrix,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

impl Scratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Scratch {
            acts: Vec::new(),
            delta: Matrix::zeros(0, 0),
            delta_next: Matrix::zeros(0, 0),
            d_w: Matrix::zeros(0, 0),
            d_b: Vec::new(),
            w_t: Matrix::zeros(0, 0),
            xb: Matrix::zeros(0, 0),
            yb: Matrix::zeros(0, 0),
        }
    }

    /// Ensures one activation buffer per layer exists.
    pub(crate) fn ensure_layers(&mut self, layers: usize) {
        while self.acts.len() < layers {
            self.acts.push(Matrix::zeros(0, 0));
        }
    }
}
