//! Sequential forward feature selection — the engine behind the paper's
//! Figure 4.
//!
//! Starting from an empty set, each round adds the candidate feature whose
//! inclusion minimizes cross-validated MSE. The resulting error-vs-feature-
//! count curve is exactly what Figure 4 plots for the three selection
//! rounds (F0 → F1, F2 → F3, F3+stats → F4).

use crate::crossval::cross_validate_with;
use crate::matrix::Matrix;
use crate::network::NetworkConfig;
use crate::parallel::{default_threads, parallel_map};
use serde::{Deserialize, Serialize};

/// The outcome of a forward-selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionResult {
    /// Feature indices in the order they were selected.
    pub order: Vec<usize>,
    /// Cross-validated MSE after adding each feature (same length as
    /// `order`).
    pub mse_curve: Vec<f64>,
}

impl SelectionResult {
    /// The feature subset that minimizes the MSE curve (ties resolve to the
    /// smaller subset).
    pub fn best_subset(&self) -> &[usize] {
        let best = self
            .mse_curve
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        &self.order[..=best]
    }

    /// The MSE of the best subset.
    ///
    /// # Panics
    ///
    /// Panics if the run selected no features.
    pub fn best_mse(&self) -> f64 {
        let k = self.best_subset().len();
        self.mse_curve[k - 1]
    }
}

/// Runs sequential forward selection over `candidates` (column indices of
/// `x`), scoring subsets with `k`-fold cross-validation, until `max_features`
/// are selected or candidates run out.
///
/// Candidate scoring within each round fans out over [`default_threads`]
/// workers; use [`forward_selection_threaded`] for an explicit count. The
/// selection is bit-identical for every thread count: every candidate's
/// cross-validation seed depends only on `(seed, round, candidate)`, and
/// the round winner is reduced in candidate order.
///
/// # Panics
///
/// Panics if `candidates` is empty or `max_features` is zero.
pub fn forward_selection(
    x: &Matrix,
    y: &Matrix,
    candidates: &[usize],
    config: &NetworkConfig,
    k: usize,
    max_features: usize,
    seed: u64,
) -> SelectionResult {
    forward_selection_threaded(x, y, candidates, config, k, max_features, seed, default_threads())
}

/// [`forward_selection`] with an explicit worker-thread count.
///
/// # Panics
///
/// Panics if `candidates` is empty, `max_features` is zero, or `threads`
/// is zero.
#[allow(clippy::too_many_arguments)]
pub fn forward_selection_threaded(
    x: &Matrix,
    y: &Matrix,
    candidates: &[usize],
    config: &NetworkConfig,
    k: usize,
    max_features: usize,
    seed: u64,
    threads: usize,
) -> SelectionResult {
    assert!(!candidates.is_empty(), "no candidate features");
    assert!(max_features > 0, "must select at least one feature");

    let mut remaining: Vec<usize> = candidates.to_vec();
    let mut selected: Vec<usize> = Vec::new();
    let mut mse_curve: Vec<f64> = Vec::new();

    while !remaining.is_empty() && selected.len() < max_features {
        let scores = parallel_map(threads, remaining.len(), |pos, scratch| {
            let cand = remaining[pos];
            let mut cols = selected.clone();
            cols.push(cand);
            let x_sub = x.select_columns(&cols);
            cross_validate_with(
                &x_sub,
                y,
                config,
                k,
                1,
                seed.wrapping_add(selected.len() as u64 * 1009 + cand as u64),
                scratch,
            )
            .mse
        });
        // Reduce in candidate order with a strict `<`: ties resolve to the
        // earlier candidate, exactly as the serial loop always did.
        let mut best: Option<(usize, f64)> = None; // (position in remaining, mse)
        for (pos, &mse) in scores.iter().enumerate() {
            match best {
                Some((_, best_mse)) if mse >= best_mse => {}
                _ => best = Some((pos, mse)),
            }
        }
        // lint: allow(panic002) reason="remaining is non-empty inside the loop, so at least one score exists"
        let (pos, mse) = best.expect("remaining is non-empty");
        selected.push(remaining.remove(pos));
        mse_curve.push(mse);
    }

    SelectionResult {
        order: selected,
        mse_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::Loss;
    use crate::optimizer::OptimizerKind;
    use sizeless_engine::RngStream;

    fn tiny_config() -> NetworkConfig {
        NetworkConfig {
            hidden_layers: 1,
            neurons: 12,
            activation: Activation::Relu,
            loss: Loss::Mse,
            optimizer: OptimizerKind::Adam { lr: 0.01 },
            l2: 0.0,
            epochs: 60,
            batch_size: 16,
        }
    }

    /// Three features: col 0 is the signal, col 1 weak signal, col 2 noise.
    fn dataset() -> (Matrix, Matrix) {
        let mut rng = RngStream::from_seed(3, "sfs-data");
        let n = 80;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            let noise = rng.uniform(0.0, 1.0);
            xs.extend_from_slice(&[a, b, noise]);
            ys.push(3.0 * a + 0.3 * b);
        }
        (Matrix::from_vec(n, 3, xs), Matrix::from_vec(n, 1, ys))
    }

    #[test]
    fn picks_the_dominant_feature_first() {
        let (x, y) = dataset();
        let result = forward_selection(&x, &y, &[0, 1, 2], &tiny_config(), 3, 3, 1);
        assert_eq!(result.order[0], 0, "order={:?}", result.order);
        assert_eq!(result.order.len(), 3);
        assert_eq!(result.mse_curve.len(), 3);
    }

    #[test]
    fn error_improves_when_adding_signal_features() {
        let (x, y) = dataset();
        let result = forward_selection(&x, &y, &[0, 1, 2], &tiny_config(), 3, 3, 2);
        // Best subset should include the dominant feature and beat using it
        // alone or be equal within noise.
        assert!(result.best_subset().contains(&0));
        assert!(result.best_mse() <= result.mse_curve[0] * 1.05);
    }

    #[test]
    fn respects_max_features() {
        let (x, y) = dataset();
        let result = forward_selection(&x, &y, &[0, 1, 2], &tiny_config(), 3, 2, 3);
        assert_eq!(result.order.len(), 2);
    }

    #[test]
    fn best_subset_prefers_smaller_on_ties() {
        let r = SelectionResult {
            order: vec![4, 7, 9],
            mse_curve: vec![0.5, 0.5, 0.6],
        };
        assert_eq!(r.best_subset(), &[4]);
        assert_eq!(r.best_mse(), 0.5);
    }

    /// Parallel candidate scoring must reproduce the serial selection
    /// bit-for-bit (same order, same curve).
    #[test]
    fn parallel_selection_is_bit_identical_to_serial() {
        let (x, y) = dataset();
        let serial = forward_selection_threaded(&x, &y, &[0, 1, 2], &tiny_config(), 3, 3, 1, 1);
        let parallel =
            forward_selection_threaded(&x, &y, &[0, 1, 2], &tiny_config(), 3, 3, 1, 4);
        assert_eq!(serial.order, parallel.order);
        let serial_bits: Vec<u64> = serial.mse_curve.iter().map(|m| m.to_bits()).collect();
        let parallel_bits: Vec<u64> = parallel.mse_curve.iter().map(|m| m.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits);
    }

    #[test]
    #[should_panic(expected = "no candidate features")]
    fn empty_candidates_panic() {
        let (x, y) = dataset();
        let _ = forward_selection(&x, &y, &[], &tiny_config(), 3, 1, 0);
    }
}
