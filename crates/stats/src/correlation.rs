//! Pearson and Spearman correlation, used for feature analysis and for the
//! discussion of how metrics relate to scaling behaviour (Section 3.4).

use crate::descriptive::{mean, std_dev};
use crate::error::{validate_pair, StatsError};

/// Pearson product-moment correlation coefficient.
///
/// # Errors
///
/// Returns [`StatsError::DegenerateVariance`] when either input is constant,
/// plus the usual validation errors.
///
/// # Examples
///
/// ```
/// let r = sizeless_stats::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    validate_pair(a, b)?;
    let ma = mean(a)?;
    let mb = mean(b)?;
    let sa = std_dev(a)?;
    let sb = std_dev(b)?;
    if sa == 0.0 || sb == 0.0 {
        return Err(StatsError::DegenerateVariance);
    }
    let cov = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64;
    Ok((cov / (sa * sb)).clamp(-1.0, 1.0))
}

/// Spearman rank correlation: Pearson correlation of mid-ranks.
///
/// # Errors
///
/// Same conditions as [`pearson`].
///
/// # Examples
///
/// ```
/// // Monotone but non-linear relation → Spearman is exactly 1.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// let rho = sizeless_stats::spearman(&x, &y).unwrap();
/// assert!((rho - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    validate_pair(a, b)?;
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Assigns mid-ranks (1-based) to a sample, averaging ranks over ties.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let mid = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = mid;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_negative() {
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_orthogonal() {
        // Symmetric "V" pattern has zero linear correlation with x.
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y = [4.0, 1.0, 0.0, 1.0, 4.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_errors() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spearman_monotone_transform_invariant() {
        let x = [0.5, 1.5, 2.5, 3.5, 9.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_with_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_of_sorted_input() {
        assert_eq!(ranks(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spearman_antisymmetric() {
        let x = [1.0, 4.0, 2.0, 8.0];
        let y = [2.0, 3.0, 9.0, 1.0];
        let r1 = spearman(&x, &y).unwrap();
        let r2 = spearman(&y, &x).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }
}
