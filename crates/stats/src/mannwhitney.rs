//! Mann–Whitney U test (Wilcoxon rank-sum), used by the paper's
//! metric-stability analysis (Figure 3).
//!
//! The paper measures 50 functions for fifteen minutes and tests, for each
//! metric, whether the samples from the first *k* minutes come from the same
//! distribution as the full fifteen-minute sample. We implement the classic
//! two-sided test with the normal approximation and tie correction, which is
//! appropriate for the large per-window sample counts involved (hundreds to
//! thousands of invocations).

use serde::{Deserialize, Serialize};
use crate::error::{validate, StatsError};
use crate::normal_cdf;

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MannWhitneyResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// The standardized z-score (tie-corrected normal approximation).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl MannWhitneyResult {
    /// Whether the null hypothesis "both samples come from the same
    /// distribution" is rejected at significance level `alpha`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_stats::mann_whitney_u;
    ///
    /// let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
    /// let r = mann_whitney_u(&a, &a).unwrap();
    /// assert!(!r.rejects_at(0.05));
    /// ```
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a two-sided Mann–Whitney U test on two independent samples.
///
/// Uses mid-ranks for ties and the tie-corrected variance
/// `σ² = (n₁·n₂/12)·((n+1) − Σ(tᵢ³−tᵢ)/(n(n−1)))`. The continuity correction
/// of 0.5 is applied to the z-score.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] if either sample is empty,
/// [`StatsError::NanInput`] on NaN input, and
/// [`StatsError::DegenerateVariance`] when every observation across both
/// samples is identical (the test is undefined; callers should treat the
/// samples as indistinguishable).
///
/// # Examples
///
/// ```
/// use sizeless_stats::mann_whitney_u;
///
/// let small: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let large: Vec<f64> = (0..50).map(|i| i as f64 + 100.0).collect();
/// let r = mann_whitney_u(&small, &large).unwrap();
/// assert!(r.rejects_at(0.05));
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<MannWhitneyResult, StatsError> {
    validate(a)?;
    validate(b)?;
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    let n = n1 + n2;

    // Pool, tag, and rank with mid-ranks for ties.
    let mut pooled: Vec<(f64, bool)> = a
        .iter()
        .map(|&x| (x, true))
        .chain(b.iter().map(|&x| (x, false)))
        .collect();
    pooled.sort_by(|l, r| l.0.total_cmp(&r.0));

    let mut rank_sum_a = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        // Observations i..=j are tied; they all receive the mid-rank.
        let t = (j - i + 1) as f64;
        let mid_rank = (i as f64 + 1.0 + j as f64 + 1.0) / 2.0;
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_a += mid_rank;
            }
        }
        tie_term += t * t * t - t;
        i = j + 1;
    }

    let u1 = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
    let mean_u = n1 * n2 / 2.0;
    let var_u = if n > 1.0 {
        (n1 * n2 / 12.0) * ((n + 1.0) - tie_term / (n * (n - 1.0)))
    } else {
        0.0
    };
    if var_u <= 0.0 {
        return Err(StatsError::DegenerateVariance);
    }

    // Continuity correction toward the mean.
    let diff = u1 - mean_u;
    let corrected = if diff > 0.0 {
        diff - 0.5
    } else if diff < 0.0 {
        diff + 0.5
    } else {
        0.0
    };
    let z = corrected / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(MannWhitneyResult {
        u: u1,
        z,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Convenience predicate used by the stability analysis: are the two samples
/// statistically indistinguishable at level `alpha`?
///
/// Identical constant samples (which make the U variance degenerate) are
/// treated as indistinguishable, since a metric that never varies is trivially
/// stable.
///
/// # Errors
///
/// Propagates [`StatsError::EmptySample`] / [`StatsError::NanInput`].
pub fn same_distribution(a: &[f64], b: &[f64], alpha: f64) -> Result<bool, StatsError> {
    match mann_whitney_u(a, b) {
        Ok(r) => Ok(!r.rejects_at(alpha)),
        Err(StatsError::DegenerateVariance) => Ok(true),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_rejected() {
        let a: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p_value > 0.9, "p={}", r.p_value);
    }

    #[test]
    fn shifted_samples_rejected() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 500.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.rejects_at(0.001));
        // All b above all a → U1 = 0.
        assert_eq!(r.u, 0.0);
    }

    #[test]
    fn u_statistics_sum_to_n1_n2() {
        let a = [1.0, 3.0, 5.0, 9.0];
        let b = [2.0, 4.0, 6.0, 7.0, 8.0];
        let r_ab = mann_whitney_u(&a, &b).unwrap();
        let r_ba = mann_whitney_u(&b, &a).unwrap();
        assert!((r_ab.u + r_ba.u - (a.len() * b.len()) as f64).abs() < 1e-9);
    }

    #[test]
    fn symmetric_p_values() {
        let a = [1.0, 2.0, 3.0, 10.0, 11.0];
        let b = [4.0, 5.0, 6.0, 7.0];
        let r_ab = mann_whitney_u(&a, &b).unwrap();
        let r_ba = mann_whitney_u(&b, &a).unwrap();
        assert!((r_ab.p_value - r_ba.p_value).abs() < 1e-9);
        assert!((r_ab.z + r_ba.z).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_small_example() {
        // a = [1,2], b = [3,4,5]: every b beats every a → U1 = 0, U2 = 6.
        let r = mann_whitney_u(&[1.0, 2.0], &[3.0, 4.0, 5.0]).unwrap();
        assert_eq!(r.u, 0.0);
    }

    #[test]
    fn ties_use_midranks() {
        // a = [1, 2], b = [2, 3]. Ranks: 1 → 1; the two 2s → 2.5; 3 → 4.
        // R_a = 3.5, U1 = 3.5 - 3 = 0.5.
        let r = mann_whitney_u(&[1.0, 2.0], &[2.0, 3.0]).unwrap();
        assert!((r.u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constant_samples_degenerate() {
        let a = [5.0; 10];
        assert_eq!(
            mann_whitney_u(&a, &a).unwrap_err(),
            StatsError::DegenerateVariance
        );
        assert!(same_distribution(&a, &a, 0.05).unwrap());
    }

    #[test]
    fn same_distribution_detects_shift() {
        let a: Vec<f64> = (0..300).map(|i| (i as f64).sin().abs()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 10.0).collect();
        assert!(!same_distribution(&a, &b, 0.05).unwrap());
        assert!(same_distribution(&a, &a.clone(), 0.05).unwrap());
    }

    #[test]
    fn empty_sample_is_error() {
        assert!(mann_whitney_u(&[], &[1.0]).is_err());
        assert!(mann_whitney_u(&[1.0], &[]).is_err());
    }
}
