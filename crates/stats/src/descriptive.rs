//! Descriptive statistics used to aggregate per-invocation monitoring samples.
//!
//! The Sizeless feature pipeline consumes the *mean*, *standard deviation*,
//! and *coefficient of variation* of each monitored metric over a measurement
//! window; this module provides those aggregates plus medians and quantiles
//! for the experiment reports.

use crate::error::{validate, StatsError};

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for empty input and
/// [`StatsError::NanInput`] if any value is NaN.
///
/// # Examples
///
/// ```
/// assert_eq!(sizeless_stats::descriptive::mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> Result<f64, StatsError> {
    validate(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`).
///
/// The monitoring aggregates treat each measurement window as the full
/// population of observed invocations, matching the paper's use of plain
/// distribution statistics rather than estimators.
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn variance(xs: &[f64]) -> Result<f64, StatsError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n - 1`); returns 0 for singleton samples.
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn sample_variance(xs: &[f64]) -> Result<f64, StatsError> {
    let m = mean(xs)?;
    if xs.len() < 2 {
        return Ok(0.0);
    }
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn std_dev(xs: &[f64]) -> Result<f64, StatsError> {
    Ok(variance(xs)?.sqrt())
}

/// Coefficient of variation (`std / mean`); 0 when the mean is 0.
///
/// The paper's final feature set F4 adds the coefficient of variation of each
/// retained metric, so this mirrors that definition including the guard for
/// all-zero metrics (e.g. file-system writes of a function that never writes).
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn coefficient_of_variation(xs: &[f64]) -> Result<f64, StatsError> {
    let m = mean(xs)?;
    if m == 0.0 {
        return Ok(0.0);
    }
    Ok(std_dev(xs)? / m.abs())
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// # Errors
///
/// Same conditions as [`mean`].
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, StatsError> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    validate(xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    quantile(xs, 0.5)
}

/// A one-pass summary of a sample: count, mean, std, cv, min, max, median.
///
/// This is the aggregate record stored per metric per measurement window.
///
/// # Examples
///
/// ```
/// use sizeless_stats::descriptive::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std_dev(), 2.0);
/// assert_eq!(s.count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    cv: f64,
    min: f64,
    max: f64,
    median: f64,
}

impl Summary {
    /// Computes a summary of `xs`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] or [`StatsError::NanInput`] on
    /// degenerate input.
    pub fn from_slice(xs: &[f64]) -> Result<Self, StatsError> {
        validate(xs)?;
        let mean_v = mean(xs)?;
        let std_v = std_dev(xs)?;
        let cv = if mean_v == 0.0 { 0.0 } else { std_v / mean_v.abs() };
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            count: xs.len(),
            mean: mean_v,
            std_dev: std_v,
            cv,
            min,
            max,
            median: median(xs)?,
        })
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Coefficient of variation (`std / |mean|`, 0 when mean is 0).
    pub fn coefficient_of_variation(&self) -> f64 {
        self.cv
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median observation.
    pub fn median(&self) -> f64 {
        self.median
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant() {
        assert_eq!(mean(&[3.0; 7]).unwrap(), 3.0);
    }

    #[test]
    fn variance_hand_computed() {
        // Population variance of [2,4,4,4,5,5,7,9] is 4.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_divides_by_n_minus_1() {
        let xs = [1.0, 2.0, 3.0];
        assert!((sample_variance(&xs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_of_singleton_is_zero() {
        assert_eq!(sample_variance(&[42.0]).unwrap(), 0.0);
    }

    #[test]
    fn cv_of_zero_mean_is_zero() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn cv_hand_computed() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((coefficient_of_variation(&xs).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_even_sample() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::from_slice(&xs).unwrap();
        assert_eq!(s.mean(), mean(&xs).unwrap());
        assert_eq!(s.std_dev(), std_dev(&xs).unwrap());
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn empty_sample_errors() {
        assert!(mean(&[]).is_err());
        assert!(Summary::from_slice(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }
}
