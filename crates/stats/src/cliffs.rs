//! Cliff's delta ordinal effect size.
//!
//! The paper applies Cliff's delta to the differences observed after one
//! minute of measurement and finds them *negligible*, justifying short
//! measurement windows. We reproduce the statistic and the conventional
//! magnitude thresholds (Romano et al.): |δ| < 0.147 negligible, < 0.33
//! small, < 0.474 medium, otherwise large.

use serde::{Deserialize, Serialize};
use crate::error::{validate, StatsError};

/// Conventional magnitude classification of Cliff's delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeltaMagnitude {
    /// |δ| < 0.147.
    Negligible,
    /// 0.147 ≤ |δ| < 0.33.
    Small,
    /// 0.33 ≤ |δ| < 0.474.
    Medium,
    /// |δ| ≥ 0.474.
    Large,
}

impl DeltaMagnitude {
    /// Classifies a delta value into its conventional magnitude band.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_stats::DeltaMagnitude;
    ///
    /// assert_eq!(DeltaMagnitude::classify(0.1), DeltaMagnitude::Negligible);
    /// assert_eq!(DeltaMagnitude::classify(-0.9), DeltaMagnitude::Large);
    /// ```
    pub fn classify(delta: f64) -> Self {
        let d = delta.abs();
        if d < 0.147 {
            DeltaMagnitude::Negligible
        } else if d < 0.33 {
            DeltaMagnitude::Small
        } else if d < 0.474 {
            DeltaMagnitude::Medium
        } else {
            DeltaMagnitude::Large
        }
    }
}

impl std::fmt::Display for DeltaMagnitude {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeltaMagnitude::Negligible => "negligible",
            DeltaMagnitude::Small => "small",
            DeltaMagnitude::Medium => "medium",
            DeltaMagnitude::Large => "large",
        };
        f.write_str(s)
    }
}

/// Computes Cliff's delta `δ = (#(a > b) − #(a < b)) / (n₁·n₂)` over all
/// pairs, via a sort + merge scan in `O((n₁+n₂) log(n₁+n₂))`.
///
/// Returns a value in `[-1, 1]`: positive when `a` tends to dominate `b`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] / [`StatsError::NanInput`] on
/// degenerate input.
///
/// # Examples
///
/// ```
/// use sizeless_stats::cliffs_delta;
///
/// // All of `a` above all of `b` → δ = 1.
/// let d = cliffs_delta(&[4.0, 5.0], &[1.0, 2.0]).unwrap();
/// assert_eq!(d, 1.0);
/// ```
pub fn cliffs_delta(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    validate(a)?;
    validate(b)?;
    let mut sb = b.to_vec();
    sb.sort_by(|l, r| l.total_cmp(r));

    let mut dominance: i64 = 0;
    for &x in a {
        // #(b < x) − #(b > x) computed via binary searches.
        let less = partition_point(&sb, |v| v < x) as i64;
        let less_or_eq = partition_point(&sb, |v| v <= x) as i64;
        let greater = sb.len() as i64 - less_or_eq;
        dominance += less - greater;
    }
    Ok(dominance as f64 / (a.len() as f64 * b.len() as f64))
}

fn partition_point(sorted: &[f64], pred: impl Fn(f64) -> bool) -> usize {
    let mut lo = 0;
    let mut hi = sorted.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(sorted[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_delta() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(cliffs_delta(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn complete_dominance_is_one() {
        assert_eq!(cliffs_delta(&[10.0, 11.0], &[1.0, 2.0]).unwrap(), 1.0);
        assert_eq!(cliffs_delta(&[1.0, 2.0], &[10.0, 11.0]).unwrap(), -1.0);
    }

    #[test]
    fn antisymmetric() {
        let a = [1.0, 5.0, 9.0, 2.0];
        let b = [3.0, 4.0, 8.0];
        let d1 = cliffs_delta(&a, &b).unwrap();
        let d2 = cliffs_delta(&b, &a).unwrap();
        assert!((d1 + d2).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_example() {
        // a = [1, 3], b = [2]. Pairs: (1,2) → −1, (3,2) → +1 ⇒ δ = 0.
        assert_eq!(cliffs_delta(&[1.0, 3.0], &[2.0]).unwrap(), 0.0);
        // a = [2, 3], b = [1, 2]. Pairs: (2,1)+, (2,2)0, (3,1)+, (3,2)+ ⇒ 3/4.
        assert_eq!(cliffs_delta(&[2.0, 3.0], &[1.0, 2.0]).unwrap(), 0.75);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let a = [0.5, 0.1, 0.9, 0.3, 0.3];
        let b = [0.2, 0.8, 0.4];
        let d = cliffs_delta(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&d));
    }

    #[test]
    fn magnitude_thresholds() {
        assert_eq!(DeltaMagnitude::classify(0.0), DeltaMagnitude::Negligible);
        assert_eq!(DeltaMagnitude::classify(0.146), DeltaMagnitude::Negligible);
        assert_eq!(DeltaMagnitude::classify(0.147), DeltaMagnitude::Small);
        assert_eq!(DeltaMagnitude::classify(0.33), DeltaMagnitude::Medium);
        assert_eq!(DeltaMagnitude::classify(0.474), DeltaMagnitude::Large);
        assert_eq!(DeltaMagnitude::classify(-1.0), DeltaMagnitude::Large);
    }

    #[test]
    fn magnitude_display() {
        assert_eq!(DeltaMagnitude::Negligible.to_string(), "negligible");
        assert_eq!(DeltaMagnitude::Large.to_string(), "large");
    }

    #[test]
    fn empty_errors() {
        assert!(cliffs_delta(&[], &[1.0]).is_err());
    }
}
