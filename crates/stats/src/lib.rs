//! Statistical foundations for the Sizeless reproduction.
//!
//! This crate provides the statistical machinery the paper relies on:
//!
//! * [`descriptive`] — means, variances, coefficients of variation, and
//!   quantiles used to aggregate per-invocation monitoring samples.
//! * [`mannwhitney`] — the Mann–Whitney U test used in the metric-stability
//!   analysis behind Figure 3 of the paper.
//! * [`cliffs`] — Cliff's delta effect size, used by the paper to argue that
//!   differences observed after one minute of measurement are negligible.
//! * [`regression`] — the regression quality metrics of Table 3 (MSE, MAPE,
//!   R², explained variance) plus MAE.
//! * [`correlation`] — Pearson and Spearman correlation, used in feature
//!   analysis.
//!
//! All routines are implemented from scratch on `&[f64]` slices, are fully
//! deterministic, and are unit-tested against hand-computed values.
//!
//! # Examples
//!
//! ```
//! use sizeless_stats::descriptive::Summary;
//!
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
//! assert_eq!(s.mean(), 2.5);
//! ```

pub mod cliffs;
pub mod correlation;
pub mod descriptive;
pub mod error;
pub mod mannwhitney;
pub mod regression;

pub use cliffs::{cliffs_delta, DeltaMagnitude};
pub use correlation::{pearson, spearman};
pub use descriptive::Summary;
pub use error::StatsError;
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use regression::RegressionReport;

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz–Stegun rational approximation of the error function,
/// accurate to about `1.5e-7` — more than sufficient for the p-values used in
/// the stability analysis.
///
/// # Examples
///
/// ```
/// let p = sizeless_stats::normal_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-7);
/// ```
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_at_zero_is_half() {
        // The rational approximation is accurate to ~1.5e-7, not exact.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn normal_cdf_standard_values() {
        // Φ(1.96) ≈ 0.975, Φ(-1.96) ≈ 0.025.
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let p = normal_cdf(i as f64 / 10.0);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn erf_is_odd() {
        for i in 0..20 {
            let x = i as f64 / 5.0;
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
        }
    }

    #[test]
    fn erf_known_value() {
        // erf(1) ≈ 0.8427007929.
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 1e-6);
    }
}
