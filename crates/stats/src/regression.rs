//! Regression quality metrics (Table 3 of the paper): MSE, MAPE, R²,
//! explained variance, plus MAE.

use serde::{Deserialize, Serialize};
use crate::descriptive::{mean, variance};
use crate::error::{validate_pair, StatsError};

/// Mean squared error between predictions and true values.
///
/// # Errors
///
/// Returns [`StatsError`] on empty, NaN, or length-mismatched input.
///
/// # Examples
///
/// ```
/// let mse = sizeless_stats::regression::mse(&[1.0, 2.0], &[1.0, 4.0]).unwrap();
/// assert_eq!(mse, 2.0);
/// ```
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> Result<f64, StatsError> {
    validate_pair(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Mean absolute error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> Result<f64, StatsError> {
    validate_pair(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Mean absolute percentage error, expressed as a fraction (0.15 = 15%).
///
/// Pairs whose true value is exactly zero are skipped, matching the common
/// scikit-learn-style guard; if *all* true values are zero the result is an
/// error.
///
/// # Errors
///
/// Same conditions as [`mse`], plus [`StatsError::DegenerateVariance`] when
/// every true value is zero.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> Result<f64, StatsError> {
    validate_pair(y_true, y_pred)?;
    let mut total = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if *t != 0.0 {
            total += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(StatsError::DegenerateVariance);
    }
    Ok(total / n as f64)
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot`.
///
/// # Errors
///
/// Same conditions as [`mse`], plus [`StatsError::DegenerateVariance`] when
/// the true values are constant.
pub fn r_squared(y_true: &[f64], y_pred: &[f64]) -> Result<f64, StatsError> {
    validate_pair(y_true, y_pred)?;
    let m = mean(y_true)?;
    let ss_tot: f64 = y_true.iter().map(|t| (t - m) * (t - m)).sum();
    if ss_tot == 0.0 {
        return Err(StatsError::DegenerateVariance);
    }
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Explained variance score `1 − Var(y − ŷ) / Var(y)`.
///
/// Unlike R², this is insensitive to a constant bias in the predictions.
///
/// # Errors
///
/// Same conditions as [`r_squared`].
pub fn explained_variance(y_true: &[f64], y_pred: &[f64]) -> Result<f64, StatsError> {
    validate_pair(y_true, y_pred)?;
    let residuals: Vec<f64> = y_true.iter().zip(y_pred).map(|(t, p)| t - p).collect();
    let var_y = variance(y_true)?;
    if var_y == 0.0 {
        return Err(StatsError::DegenerateVariance);
    }
    Ok(1.0 - variance(&residuals)? / var_y)
}

/// Relative prediction error `|pred − true| / true`, as used in Tables 4–7.
///
/// # Panics
///
/// Panics if `y_true` is zero (execution times are strictly positive).
pub fn relative_error(y_true: f64, y_pred: f64) -> f64 {
    assert!(y_true != 0.0, "relative error undefined for zero true value");
    ((y_pred - y_true) / y_true).abs()
}

/// The full set of regression metrics reported in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionReport {
    /// Mean squared error.
    pub mse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Mean absolute percentage error (fraction).
    pub mape: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Explained variance score.
    pub explained_variance: f64,
}

impl RegressionReport {
    /// Computes all metrics for a prediction vector.
    ///
    /// # Errors
    ///
    /// Propagates errors from the individual metrics, including
    /// [`StatsError::DegenerateVariance`] for constant targets.
    pub fn evaluate(y_true: &[f64], y_pred: &[f64]) -> Result<Self, StatsError> {
        Ok(RegressionReport {
            mse: mse(y_true, y_pred)?,
            mae: mae(y_true, y_pred)?,
            mape: mape(y_true, y_pred)?,
            r_squared: r_squared(y_true, y_pred)?,
            explained_variance: explained_variance(y_true, y_pred)?,
        })
    }
}

impl std::fmt::Display for RegressionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MSE={:.4} MAE={:.4} MAPE={:.3} R2={:.3} ExpVar={:.3}",
            self.mse, self.mae, self.mape, self.r_squared, self.explained_variance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let r = RegressionReport::evaluate(&y, &y).unwrap();
        assert_eq!(r.mse, 0.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.r_squared, 1.0);
        assert_eq!(r.explained_variance, 1.0);
    }

    #[test]
    fn mse_hand_computed() {
        assert_eq!(mse(&[0.0, 0.0], &[1.0, 3.0]).unwrap(), 5.0);
    }

    #[test]
    fn mae_hand_computed() {
        assert_eq!(mae(&[0.0, 0.0], &[1.0, -3.0]).unwrap(), 2.0);
    }

    #[test]
    fn mape_skips_zero_targets() {
        // Only the pair (2, 3) counts: |1/2| = 0.5.
        assert_eq!(mape(&[0.0, 2.0], &[5.0, 3.0]).unwrap(), 0.5);
    }

    #[test]
    fn mape_all_zero_targets_errors() {
        assert!(mape(&[0.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn r_squared_of_mean_prediction_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!((r_squared(&y, &pred).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn r_squared_can_be_negative() {
        let y = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert!(r_squared(&y, &pred).unwrap() < 0.0);
    }

    #[test]
    fn explained_variance_ignores_bias() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let biased: Vec<f64> = y.iter().map(|v| v + 10.0).collect();
        assert!((explained_variance(&y, &biased).unwrap() - 1.0).abs() < 1e-12);
        assert!(r_squared(&y, &biased).unwrap() < 0.0);
    }

    #[test]
    fn constant_target_is_degenerate() {
        assert_eq!(
            r_squared(&[2.0, 2.0], &[1.0, 3.0]).unwrap_err(),
            StatsError::DegenerateVariance
        );
    }

    #[test]
    fn relative_error_matches_tables_definition() {
        // Prediction 40ms vs real 20ms → 100% error, as discussed for
        // ListAllEvents in the paper.
        assert!((relative_error(20.0, 40.0) - 1.0).abs() < 1e-12);
        assert!((relative_error(100.0, 90.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "relative error undefined")]
    fn relative_error_zero_true_panics() {
        let _ = relative_error(0.0, 1.0);
    }

    #[test]
    fn report_display_is_nonempty() {
        let y = [1.0, 2.0];
        let r = RegressionReport::evaluate(&y, &[1.1, 1.9]).unwrap();
        assert!(!r.to_string().is_empty());
    }
}
