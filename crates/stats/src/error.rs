//! Error type shared by the statistics routines.

use std::error::Error;
use std::fmt;

/// Error returned by statistical routines on degenerate input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input sample was empty where at least one observation is required.
    EmptySample,
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input contained a NaN, which has no defined ordering.
    NanInput,
    /// A quantity that must be strictly positive was zero (e.g. variance when
    /// computing R² of a constant target).
    DegenerateVariance,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "sample is empty"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples have different lengths ({left} vs {right})")
            }
            StatsError::NanInput => write!(f, "input contains NaN"),
            StatsError::DegenerateVariance => {
                write!(f, "variance is zero, statistic is undefined")
            }
        }
    }
}

impl Error for StatsError {}

/// Validates that a slice is non-empty and NaN-free.
pub(crate) fn validate(xs: &[f64]) -> Result<(), StatsError> {
    if xs.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NanInput);
    }
    Ok(())
}

/// Validates a pair of equally-sized, non-empty, NaN-free slices.
pub(crate) fn validate_pair(a: &[f64], b: &[f64]) -> Result<(), StatsError> {
    validate(a)?;
    validate(b)?;
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        assert_eq!(StatsError::EmptySample.to_string(), "sample is empty");
        assert_eq!(
            StatsError::LengthMismatch { left: 2, right: 3 }.to_string(),
            "paired samples have different lengths (2 vs 3)"
        );
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(validate(&[]), Err(StatsError::EmptySample));
    }

    #[test]
    fn validate_rejects_nan() {
        assert_eq!(validate(&[1.0, f64::NAN]), Err(StatsError::NanInput));
    }

    #[test]
    fn validate_pair_rejects_mismatch() {
        assert_eq!(
            validate_pair(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn validate_accepts_good_input() {
        assert!(validate(&[0.0, 1.0]).is_ok());
        assert!(validate_pair(&[0.0], &[1.0]).is_ok());
    }
}
