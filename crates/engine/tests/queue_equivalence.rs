//! Property suite: every [`QueueKind`] pops in exactly the heap's order.
//!
//! The calendar/ladder representation is purely a performance choice — the
//! module doc of `sizeless_engine::queue` promises the knob "can never
//! change a simulation result". This suite pins that promise on arbitrary
//! operation sequences: random timestamps (including exact ties), random
//! interleavings of schedules and pops, tiny ladders that force the
//! overflow and rebase paths, and capacity hints. Payloads are the
//! schedule indices, so a single out-of-order pop is visible.

use proptest::prelude::*;
use sizeless_engine::{EventQueue, QueueKind, SimTime};

/// The ladder configurations under test, from the tuned default down to a
/// deliberately degenerate single-bucket ring (everything overflows).
fn calendar_kinds() -> Vec<QueueKind> {
    vec![
        QueueKind::calendar(),
        QueueKind::Calendar {
            bucket_ms: 1.0,
            buckets: 4,
        },
        QueueKind::Calendar {
            bucket_ms: 7.0,
            buckets: 16,
        },
        QueueKind::Calendar {
            bucket_ms: 0.25,
            buckets: 1,
        },
    ]
}

/// One scripted queue operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Schedule at this timestamp (ms).
    Schedule(f64),
    /// Pop once (no-op on an empty queue).
    Pop,
}

/// Decodes a generated `(selector, tick, half)` triple into an [`Op`]: one
/// in four operations pops, the rest schedule on a coarse 0.5 ms grid (so
/// exact timestamp ties are common) with an optional 0.25 ms offset that
/// keeps some values off bucket boundaries.
fn decode(triple: (u32, u32, u32)) -> Op {
    let (selector, tick, half) = triple;
    if selector == 0 {
        Op::Pop
    } else {
        Op::Schedule(f64::from(tick) * 0.5 + if half == 1 { 0.25 } else { 0.0 })
    }
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u32..4, 0u32..2_000, 0u32..2), 0..max_len)
        .prop_map(|triples| triples.into_iter().map(decode).collect())
}

/// Replays `ops` against a queue of the given kind and returns the
/// `(time-bits, payload)` pop sequence, draining at the end. Payloads are
/// schedule indices, so any reordering — even among exact timestamp ties —
/// changes the output.
fn replay(kind: QueueKind, capacity: usize, ops: &[Op]) -> Vec<(u64, u32)> {
    let mut q: EventQueue<u32> = EventQueue::with_capacity(kind, capacity);
    let mut out = Vec::new();
    let mut idx = 0u32;
    for op in ops {
        match op {
            Op::Schedule(at) => {
                q.schedule(SimTime::from_millis(*at), idx);
                idx += 1;
            }
            Op::Pop => {
                if let Some((t, p)) = q.pop() {
                    out.push((t.as_millis().to_bits(), p));
                }
            }
        }
    }
    while let Some((t, p)) = q.pop() {
        out.push((t.as_millis().to_bits(), p));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary schedule/pop interleavings: every calendar configuration
    /// pops the exact heap sequence, bit-for-bit timestamps included.
    #[test]
    fn calendar_pops_in_exact_heap_order(
        ops in ops_strategy(400),
        capacity in 0usize..64,
    ) {
        let heap = replay(QueueKind::Heap, capacity, &ops);
        for kind in calendar_kinds() {
            prop_assert_eq!(replay(kind, capacity, &ops), heap.clone(), "{:?}", kind);
        }
    }

    /// Bursts of identical timestamps pop in insertion (FIFO) order under
    /// every representation.
    #[test]
    fn same_timestamp_ties_are_fifo(
        times in proptest::collection::vec(0u32..50, 1..120),
    ) {
        for kind in std::iter::once(QueueKind::Heap).chain(calendar_kinds()) {
            let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(f64::from(*t)), i as u32);
            }
            let mut popped: Vec<(u32, u32)> = Vec::new();
            while let Some((t, p)) = q.pop() {
                popped.push((t.as_millis() as u32, p));
            }
            // Sorted by time; within one timestamp the payloads (insertion
            // indices) must ascend — Vec::sort is stable, so sorting the
            // (time, index) pairs gives exactly the FIFO-tie order.
            let mut expected: Vec<(u32, u32)> = times
                .iter()
                .enumerate()
                .map(|(i, t)| (*t, i as u32))
                .collect();
            expected.sort();
            prop_assert_eq!(popped, expected, "{:?}", kind);
        }
    }

    /// `peek_time` always reports exactly the timestamp the next pop
    /// returns, and agrees with it on emptiness.
    #[test]
    fn peek_matches_next_pop(ops in ops_strategy(200)) {
        for kind in std::iter::once(QueueKind::Heap).chain(calendar_kinds()) {
            let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
            let mut idx = 0u32;
            for op in &ops {
                match op {
                    Op::Schedule(at) => {
                        q.schedule(SimTime::from_millis(*at), idx);
                        idx += 1;
                    }
                    Op::Pop => {
                        let peek = q.peek_time();
                        let popped = q.pop();
                        match (peek, popped) {
                            (Some(pt), Some((t, _))) => prop_assert_eq!(
                                pt.as_millis().to_bits(),
                                t.as_millis().to_bits(),
                                "{:?}",
                                kind
                            ),
                            (None, None) => {}
                            (peek, popped) => prop_assert!(
                                false,
                                "peek/pop disagree on emptiness: {:?} vs {:?} ({:?})",
                                peek,
                                popped.map(|(t, p)| (t.as_millis(), p)),
                                kind
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// Counters (scheduled / high-water / len) agree across representations —
/// the engine's `SimStats` are derived from these, so divergence here
/// would silently skew reported run statistics.
#[test]
fn bookkeeping_matches_across_kinds() {
    let script: Vec<f64> = (0..500)
        .map(|i| f64::from((i * 37) % 199) * 0.75)
        .collect();
    let mut reference: Option<(u64, usize, usize)> = None;
    for kind in std::iter::once(QueueKind::Heap).chain(calendar_kinds()) {
        let mut q: EventQueue<usize> = EventQueue::with_kind(kind);
        for (i, t) in script.iter().enumerate() {
            q.schedule(SimTime::from_millis(*t), i);
            if i.is_multiple_of(5) {
                q.pop();
            }
        }
        let stats = (q.scheduled(), q.high_water(), q.len());
        match &reference {
            None => reference = Some(stats),
            Some(r) => assert_eq!(stats, *r, "{kind:?}"),
        }
    }
}
