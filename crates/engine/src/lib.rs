//! Discrete-event simulation engine underpinning the serverless platform
//! simulator.
//!
//! The Sizeless paper measured real AWS Lambda; this reproduction replaces the
//! cloud with a deterministic, seedable discrete-event simulation. This crate
//! provides the domain-independent core:
//!
//! * [`time`] — virtual time ([`SimTime`], [`SimDuration`]) in milliseconds.
//! * [`queue`] — a stable event queue ordered by `(time, sequence)`.
//! * [`rng`] — reproducible random-number streams derived from a master seed,
//!   so independent subsystems (arrivals, service latencies, noise) draw from
//!   decorrelated streams and experiments replay exactly.
//! * [`dist`] — the probability distributions used by the platform model:
//!   exponential inter-arrival times (the paper drives functions at 30 rps
//!   with exponentially distributed inter-arrival time), lognormal latency
//!   noise, and friends.
//! * [`sim`] — a minimal simulation driver for callback-style models.
//!
//! # Examples
//!
//! ```
//! use sizeless_engine::prelude::*;
//!
//! let mut rng = RngStream::from_seed(42, "arrivals");
//! let exp = Exponential::new(1.0 / 33.3).unwrap(); // ~30 rps
//! let gap = exp.sample(&mut rng);
//! assert!(gap > 0.0);
//! ```

pub mod dist;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;

/// Convenient re-exports of the most used engine items.
pub mod prelude {
    pub use crate::dist::{
        Deterministic, Distribution, Exponential, Gamma, LogNormal, Normal, Pareto, Uniform,
    };
    pub use crate::queue::EventQueue;
    pub use crate::rng::RngStream;
    pub use crate::sim::Simulation;
    pub use crate::time::{SimDuration, SimTime};
}

pub use dist::Distribution;
pub use queue::{EventQueue, QueueKind};
pub use rng::{fnv1a, RngStream};
pub use sim::{Callback, SimEvent, SimStats, Simulation};
pub use time::{SimDuration, SimTime};
