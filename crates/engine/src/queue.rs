//! A stable discrete-event queue.
//!
//! Events are popped in `(time, sequence)` order: ties on the virtual clock
//! break in insertion order, which keeps simulations deterministic even when
//! many events share a timestamp (e.g. simultaneous arrivals across
//! functions).
//!
//! Two storage representations sit behind the one API, selected by a
//! constructor knob ([`QueueKind`]):
//!
//! * **Heap** (the default) — a plain binary heap. Best for tiny or
//!   irregular schedules.
//! * **Calendar** — a ladder of fixed-width time buckets over the near
//!   future, with far-future events parked in an overflow heap that drains
//!   into the ladder as the cursor advances. Scheduling is O(1) amortized
//!   and popping scans forward from the last pop, which beats the heap's
//!   log-factor (and its cache misses) on the dense, mostly-monotone
//!   schedules a fleet run produces.
//!
//! Both representations pop in exactly the same `(time, seq)` order — the
//! equivalence is property-tested in `tests/queue_equivalence.rs` — so the
//! knob is purely a performance choice and can never change a simulation
//! result.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a payload of type `T`.
#[derive(Debug)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on BinaryHeap (a max-heap).
        // total_cmp keeps this a true total order even if a NaN timestamp
        // ever slips in (it sorts last instead of corrupting the heap).
        other
            .time
            .as_millis()
            .total_cmp(&self.time.as_millis())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Which storage representation an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueKind {
    /// Binary-heap storage: `EventQueue::new()`'s default.
    Heap,
    /// Calendar/ladder storage: `buckets` ring slots of `bucket_ms` virtual
    /// milliseconds each; events beyond the `buckets * bucket_ms` horizon
    /// wait in an overflow heap until the cursor approaches them.
    Calendar {
        /// Width of one ladder bucket in virtual milliseconds.
        bucket_ms: f64,
        /// Number of ring buckets (the near-future horizon is
        /// `buckets * bucket_ms`).
        buckets: usize,
    },
}

impl QueueKind {
    /// The calendar variant with defaults tuned for millisecond-granular
    /// fleet schedules: 1 ms buckets, a ~1 s horizon.
    pub fn calendar() -> Self {
        QueueKind::Calendar {
            bucket_ms: 1.0,
            buckets: 1024,
        }
    }
}

/// Calendar/ladder storage: a ring of time buckets over
/// `[cursor, cursor + n)` virtual bucket indices plus an overflow min-heap
/// for events past that horizon.
///
/// Invariants:
/// * every ring entry has `vindex ∈ [cursor, cursor + n)` — so within the
///   window each ring bucket holds exactly one virtual index and a forward
///   scan visits buckets in time order;
/// * every overflow entry has `vindex >= cursor + n` — kept true by
///   draining the overflow heap whenever the cursor advances.
#[derive(Debug)]
struct Calendar<T> {
    buckets: Vec<Vec<Scheduled<T>>>,
    bucket_ms: f64,
    /// Lowest virtual bucket index a ring entry may occupy.
    cursor: u64,
    ring_len: usize,
    overflow: BinaryHeap<Scheduled<T>>,
}

impl<T> Calendar<T> {
    fn new(bucket_ms: f64, n: usize, capacity: usize) -> Self {
        let n = n.max(1);
        let bucket_ms = if bucket_ms > 0.0 { bucket_ms } else { 1.0 };
        // Spread the capacity hint across the ring so steady-state bucket
        // pushes never reallocate; the hint is a soft target, so a small
        // floor per bucket is enough.
        let per_bucket = (capacity / n).max(4);
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(Vec::with_capacity(per_bucket));
        }
        Calendar {
            buckets,
            bucket_ms,
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn vindex(&self, time: SimTime) -> u64 {
        (time.as_millis() / self.bucket_ms) as u64
    }

    fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    fn schedule(&mut self, entry: Scheduled<T>) {
        let n = self.buckets.len() as u64;
        let v = self.vindex(entry.time);
        if v < self.cursor {
            // A past-time insert (never produced by a simulation, which only
            // schedules at or after its clock, but legal on the raw queue):
            // rebase the window onto it and spill now-out-of-window ring
            // entries to the overflow heap.
            self.rebase(v);
        }
        if v >= self.cursor + n {
            self.overflow.push(entry);
        } else {
            self.buckets[(v % n) as usize].push(entry);
            self.ring_len += 1;
        }
    }

    /// Moves the window start back to `v` and restores the ring invariant.
    fn rebase(&mut self, v: u64) {
        let n = self.buckets.len() as u64;
        self.cursor = v;
        if self.ring_len == 0 {
            return;
        }
        for b in 0..self.buckets.len() {
            let mut i = 0;
            while i < self.buckets[b].len() {
                let ev = self.vindex(self.buckets[b][i].time);
                if ev >= self.cursor + n {
                    let entry = self.buckets[b].swap_remove(i);
                    self.overflow.push(entry);
                    self.ring_len -= 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Moves overflow events that entered the window into the ring.
    fn drain_overflow(&mut self) {
        let n = self.buckets.len() as u64;
        while let Some(top) = self.overflow.peek() {
            let v = self.vindex(top.time);
            if v >= self.cursor + n {
                break;
            }
            // The peek above proved the heap is non-empty.
            if let Some(entry) = self.overflow.pop() {
                self.buckets[(v % n) as usize].push(entry);
                self.ring_len += 1;
            }
        }
    }

    /// The virtual index of the first non-empty ring bucket at or after the
    /// cursor. `ring_len > 0` guarantees one exists within the window.
    fn first_bucket(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        let mut vb = self.cursor;
        while vb < self.cursor + n {
            if !self.buckets[(vb % n) as usize].is_empty() {
                return Some(vb);
            }
            vb += 1;
        }
        None
    }

    /// Index of the `(time, seq)`-minimal entry within a bucket.
    fn min_in_bucket(bucket: &[Scheduled<T>]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in bucket.iter().enumerate() {
            let better = match best {
                None => true,
                Some(b) => {
                    let cur = &bucket[b];
                    match e.time.as_millis().total_cmp(&cur.time.as_millis()) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => e.seq < cur.seq,
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    fn pop(&mut self) -> Option<Scheduled<T>> {
        if self.len() == 0 {
            return None;
        }
        if self.ring_len == 0 {
            // Ring exhausted: jump the window to the earliest far-future
            // event and pull the now-near ones in.
            if let Some(top) = self.overflow.peek() {
                self.cursor = self.vindex(top.time);
            }
            self.drain_overflow();
        }
        let vb = self.first_bucket()?;
        let slot = (vb % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[slot];
        let idx = Self::min_in_bucket(bucket)?;
        let entry = bucket.swap_remove(idx);
        self.ring_len -= 1;
        // Advancing the cursor widens the horizon: top up the ring so the
        // overflow invariant (`vindex >= cursor + n`) holds for peeks.
        if vb > self.cursor {
            self.cursor = vb;
            self.drain_overflow();
        }
        Some(entry)
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self.first_bucket() {
            Some(vb) => {
                let bucket = &self.buckets[(vb % self.buckets.len() as u64) as usize];
                Self::min_in_bucket(bucket).map(|i| bucket[i].time)
            }
            // Empty ring: the overflow min is the global min.
            None => self.overflow.peek().map(|s| s.time),
        }
    }
}

#[derive(Debug)]
enum Repr<T> {
    Heap(BinaryHeap<Scheduled<T>>),
    Calendar(Calendar<T>),
}

/// A deterministic min-priority event queue keyed by [`SimTime`].
///
/// # Examples
///
/// ```
/// use sizeless_engine::queue::EventQueue;
/// use sizeless_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5.0), "b");
/// q.schedule(SimTime::from_millis(1.0), "a");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.pop().is_none());
/// ```
///
/// The calendar variant pops in the identical order:
///
/// ```
/// use sizeless_engine::queue::{EventQueue, QueueKind};
/// use sizeless_engine::time::SimTime;
///
/// let mut q = EventQueue::with_kind(QueueKind::calendar());
/// q.schedule(SimTime::from_millis(5.0), "b");
/// q.schedule(SimTime::from_millis(1.0), "a");
/// assert_eq!(q.pop().unwrap().1, "a");
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    repr: Repr<T>,
    next_seq: u64,
    high_water: usize,
}

impl<T> EventQueue<T> {
    /// Creates an empty heap-backed queue.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// Creates an empty queue with the chosen storage representation.
    pub fn with_kind(kind: QueueKind) -> Self {
        Self::with_capacity(kind, 0)
    }

    /// Creates an empty queue pre-reserved for `capacity` pending events, so
    /// steady-state scheduling never pays a realloc/re-heapify. The capacity
    /// is a growth hint, not a limit.
    pub fn with_capacity(kind: QueueKind, capacity: usize) -> Self {
        let repr = match kind {
            QueueKind::Heap => Repr::Heap(BinaryHeap::with_capacity(capacity)),
            QueueKind::Calendar { bucket_ms, buckets } => {
                Repr::Calendar(Calendar::new(bucket_ms, buckets, capacity))
            }
        };
        EventQueue {
            repr,
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `payload` at virtual time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Scheduled { time, seq, payload };
        match &mut self.repr {
            Repr::Heap(heap) => heap.push(entry),
            Repr::Calendar(cal) => cal.schedule(entry),
        }
        self.high_water = self.high_water.max(self.len());
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let entry = match &mut self.repr {
            Repr::Heap(heap) => heap.pop(),
            Repr::Calendar(cal) => cal.pop(),
        };
        entry.map(|s| (s.time, s.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.repr {
            Repr::Heap(heap) => heap.peek().map(|s| s.time),
            Repr::Calendar(cal) => cal.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Heap(heap) => heap.len(),
            Repr::Calendar(cal) => cal.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// The most events that were ever pending at once (queue depth
    /// high-water mark).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both representations, so every test runs against each.
    fn kinds() -> [QueueKind; 3] {
        [
            QueueKind::Heap,
            QueueKind::calendar(),
            // A deliberately tiny ladder so the overflow path is exercised.
            QueueKind::Calendar {
                bucket_ms: 1.0,
                buckets: 4,
            },
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_millis(3.0), 3);
            q.schedule(SimTime::from_millis(1.0), 1);
            q.schedule(SimTime::from_millis(2.0), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    fn ties_break_in_insertion_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(7.0);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, (0..100).collect::<Vec<i32>>(), "{kind:?}");
        }
    }

    #[test]
    fn peek_does_not_consume() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_millis(4.0), ());
            assert_eq!(q.peek_time().unwrap().as_millis(), 4.0, "{kind:?}");
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        for kind in kinds() {
            let mut q: EventQueue<()> = EventQueue::with_kind(kind);
            assert!(q.pop().is_none(), "{kind:?}");
            assert!(q.peek_time().is_none(), "{kind:?}");
        }
    }

    #[test]
    fn high_water_tracks_peak_depth_not_current() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..5 {
                q.schedule(SimTime::from_millis(i as f64), i);
            }
            assert_eq!(q.high_water(), 5);
            q.pop();
            q.pop();
            assert_eq!(q.len(), 3);
            assert_eq!(q.high_water(), 5, "draining must not lower the mark");
            q.schedule(SimTime::from_millis(9.0), 9);
            assert_eq!(q.high_water(), 5, "refilling below the peak keeps it");
            assert_eq!(q.scheduled(), 6);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_millis(10.0), "late");
            q.schedule(SimTime::from_millis(1.0), "early");
            assert_eq!(q.pop().unwrap().1, "early", "{kind:?}");
            q.schedule(SimTime::from_millis(5.0), "middle");
            assert_eq!(q.pop().unwrap().1, "middle", "{kind:?}");
            assert_eq!(q.pop().unwrap().1, "late", "{kind:?}");
        }
    }

    #[test]
    fn calendar_handles_far_future_and_past_inserts() {
        // Beyond the 4-bucket horizon, so events park in overflow; then a
        // past-time insert forces a rebase of the window.
        let mut q = EventQueue::with_kind(QueueKind::Calendar {
            bucket_ms: 1.0,
            buckets: 4,
        });
        q.schedule(SimTime::from_millis(100.0), "far");
        q.schedule(SimTime::from_millis(2.0), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        q.schedule(SimTime::from_millis(1.0), "past");
        assert_eq!(q.peek_time().unwrap().as_millis(), 1.0);
        assert_eq!(q.pop().unwrap().1, "past");
        q.schedule(SimTime::from_millis(101.5), "far2");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_matches_heap_on_a_mixed_schedule() {
        // A deterministic pseudo-random interleaving of schedules and pops,
        // replayed against both representations; the pop sequences must be
        // identical (the full property test lives in
        // tests/queue_equivalence.rs).
        let run = |kind: QueueKind| -> Vec<(u64, u32)> {
            let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
            let mut out = Vec::new();
            let mut x: u64 = 0x2545_f491_4f6c_dd1d;
            for i in 0..4000u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let t = (x % 50_000) as f64 / 16.0;
                q.schedule(SimTime::from_millis(t), i);
                if x.is_multiple_of(3) {
                    if let Some((time, p)) = q.pop() {
                        out.push((time.as_millis().to_bits(), p));
                    }
                }
            }
            while let Some((time, p)) = q.pop() {
                out.push((time.as_millis().to_bits(), p));
            }
            out
        };
        let heap = run(QueueKind::Heap);
        for kind in [
            QueueKind::calendar(),
            QueueKind::Calendar {
                bucket_ms: 7.0,
                buckets: 16,
            },
        ] {
            assert_eq!(run(kind), heap, "{kind:?}");
        }
    }
}
