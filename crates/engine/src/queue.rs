//! A stable discrete-event queue.
//!
//! Events are popped in `(time, sequence)` order: ties on the virtual clock
//! break in insertion order, which keeps simulations deterministic even when
//! many events share a timestamp (e.g. simultaneous arrivals across
//! functions).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a payload of type `T`.
#[derive(Debug)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on BinaryHeap (a max-heap).
        // total_cmp keeps this a true total order even if a NaN timestamp
        // ever slips in (it sorts last instead of corrupting the heap).
        other
            .time
            .as_millis()
            .total_cmp(&self.time.as_millis())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority event queue keyed by [`SimTime`].
///
/// # Examples
///
/// ```
/// use sizeless_engine::queue::EventQueue;
/// use sizeless_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5.0), "b");
/// q.schedule(SimTime::from_millis(1.0), "a");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    high_water: usize,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `payload` at virtual time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// The most events that were ever pending at once (queue depth
    /// high-water mark).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3.0), 3);
        q.schedule(SimTime::from_millis(1.0), 1);
        q.schedule(SimTime::from_millis(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(4.0), ());
        assert_eq!(q.peek_time().unwrap().as_millis(), 4.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn high_water_tracks_peak_depth_not_current() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::from_millis(i as f64), i);
        }
        assert_eq!(q.high_water(), 5);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_water(), 5, "draining must not lower the mark");
        q.schedule(SimTime::from_millis(9.0), 9);
        assert_eq!(q.high_water(), 5, "refilling below the peak keeps it");
        assert_eq!(q.scheduled(), 6);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10.0), "late");
        q.schedule(SimTime::from_millis(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_millis(5.0), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
