//! Virtual simulation time.
//!
//! All platform latencies are expressed in milliseconds, matching the unit
//! AWS Lambda bills and reports in. [`SimTime`] is an absolute instant on the
//! simulation clock; [`SimDuration`] is a span between instants. Both are
//! thin newtypes over `f64` so arithmetic stays cheap while the type system
//! keeps instants and spans apart.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant of virtual time, in milliseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

/// A span of virtual time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `ms` milliseconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or NaN.
    pub fn from_millis(ms: f64) -> Self {
        assert!(ms >= 0.0 && !ms.is_nan(), "sim time must be non-negative");
        SimTime(ms)
    }

    /// Creates an instant at `s` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or NaN.
    pub fn from_secs(s: f64) -> Self {
        Self::from_millis(s * 1000.0)
    }

    /// This instant as milliseconds since simulation start.
    pub fn as_millis(self) -> f64 {
        self.0
    }

    /// This instant as seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0 / 1000.0
    }

    /// The span since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later instant"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span of `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or NaN.
    pub fn from_millis(ms: f64) -> Self {
        assert!(ms >= 0.0 && !ms.is_nan(), "duration must be non-negative");
        SimDuration(ms)
    }

    /// Creates a span of `s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or NaN.
    pub fn from_secs(s: f64) -> Self {
        Self::from_millis(s * 1000.0)
    }

    /// Creates a span of `m` minutes.
    ///
    /// # Panics
    ///
    /// Panics if `m` is negative or NaN.
    pub fn from_mins(m: f64) -> Self {
        Self::from_millis(m * 60_000.0)
    }

    /// The span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0
    }

    /// The span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs >= 0.0, "cannot scale a duration by a negative factor");
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        assert!(rhs > 0.0, "cannot divide a duration by a non-positive factor");
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(100.0) + SimDuration::from_millis(50.0);
        assert_eq!(t.as_millis(), 150.0);
        assert_eq!((t - SimTime::from_millis(100.0)).as_millis(), 50.0);
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(SimTime::from_secs(2.0).as_millis(), 2000.0);
        assert_eq!(SimDuration::from_secs(1.5).as_millis(), 1500.0);
        assert_eq!(SimDuration::from_mins(10.0).as_secs(), 600.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100.0);
        assert_eq!((d * 2.0).as_millis(), 200.0);
        assert_eq!((d / 4.0).as_millis(), 25.0);
    }

    #[test]
    fn add_assign_works() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(10.0);
        t += SimDuration::from_millis(5.0);
        assert_eq!(t.as_millis(), 15.0);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_millis(1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_millis(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1.5).to_string(), "t=1.500ms");
        assert_eq!(SimDuration::from_millis(2.0).to_string(), "2.000ms");
    }
}
