//! Probability distributions used by the platform model.
//!
//! The measurement methodology of the paper drives each function at 30
//! requests per second with *exponentially distributed inter-arrival times*
//! ([`Exponential`]); cloud execution-time noise is well described by
//! right-skewed distributions ([`LogNormal`], [`Gamma`]); cold-start
//! durations and payload sizes use [`Normal`] / [`Uniform`] / [`Pareto`]
//! components.

use crate::rng::RngStream;

/// A sampleable, one-dimensional distribution.
///
/// Implementors are small value types; the trait is object-safe so models can
/// store heterogeneous `Box<dyn Distribution>` latency components.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut RngStream) -> f64;

    /// The distribution mean, used for analytic sanity checks.
    fn mean(&self) -> f64;
}

/// Point mass at a single value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic(pub f64);

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut RngStream) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate` per millisecond.
    ///
    /// # Errors
    ///
    /// Returns `None` if `rate` is not strictly positive.
    pub fn new(rate: f64) -> Option<Self> {
        (rate > 0.0 && rate.is_finite()).then_some(Exponential { rate })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns `None` if `mean` is not strictly positive.
    pub fn with_mean(mean: f64) -> Option<Self> {
        Self::new(1.0 / mean)
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        // Inverse CDF; 1 - u ∈ (0, 1] avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns `None` if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Option<Self> {
        (std >= 0.0 && mean.is_finite() && std.is_finite()).then_some(Normal { mean, std })
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.mean + self.std * rng.standard_normal()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal distribution parameterized by the *target* mean and the σ of
/// the underlying normal.
///
/// This is the workhorse execution-time noise model: multiplicative,
/// right-skewed, strictly positive — matching observed Lambda latency
/// distributions (Figiela et al. 2018).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the underlying normal's parameters.
    ///
    /// # Errors
    ///
    /// Returns `None` if `sigma` is negative or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (sigma >= 0.0 && mu.is_finite() && sigma.is_finite()).then_some(LogNormal { mu, sigma })
    }

    /// Creates a lognormal whose *distribution mean* is `mean`, with shape
    /// `sigma`. Useful for "multiply latency by noise with mean 1".
    ///
    /// # Errors
    ///
    /// Returns `None` if `mean` is not strictly positive or `sigma` invalid.
    pub fn with_mean(mean: f64, sigma: f64) -> Option<Self> {
        if mean.is_nan() || mean <= 0.0 || sigma < 0.0 || !sigma.is_finite() {
            return None;
        }
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns `None` if the range is empty or non-finite.
    pub fn new(lo: f64, hi: f64) -> Option<Self> {
        (lo < hi && lo.is_finite() && hi.is_finite()).then_some(Uniform { lo, hi })
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        rng.uniform(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`), sampled with
/// the Marsaglia–Tsang method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Errors
    ///
    /// Returns `None` unless both parameters are strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> Option<Self> {
        (shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite())
            .then_some(Gamma { shape, scale })
    }
}

impl Distribution for Gamma {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        // Marsaglia–Tsang; boost shape < 1 via the u^(1/k) trick.
        let (k, boost) = if self.shape < 1.0 {
            (
                self.shape + 1.0,
                (rng.next_f64().max(f64::MIN_POSITIVE)).powf(1.0 / self.shape),
            )
        } else {
            (self.shape, 1.0)
        };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.standard_normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.next_f64();
            if u < 1.0 - 0.0331 * x * x * x * x
                || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln())
            {
                return boost * d * v3 * self.scale;
            }
        }
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale
    }
}

/// Pareto (type I) distribution with minimum `x_m` and tail index `α`.
///
/// Used for heavy-tailed payload sizes; the mean is finite only for `α > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns `None` unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Option<Self> {
        (x_min > 0.0 && alpha > 0.0 && x_min.is_finite() && alpha.is_finite())
            .then_some(Pareto { x_min, alpha })
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.x_min / (1.0 - rng.next_f64()).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha > 1.0 {
            self.alpha * self.x_min / (self.alpha - 1.0)
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &dyn Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = RngStream::from_seed(seed, "dist-test");
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic(4.2);
        let mut rng = RngStream::from_seed(0, "d");
        assert_eq!(d.sample(&mut rng), 4.2);
        assert_eq!(d.mean(), 4.2);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(33.3).unwrap();
        let m = empirical_mean(&d, 50_000, 1);
        assert!((m - 33.3).abs() / 33.3 < 0.03, "m={m}");
    }

    #[test]
    fn exponential_positive() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = RngStream::from_seed(2, "e");
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-1.0).is_none());
        assert!(Exponential::new(f64::NAN).is_none());
    }

    #[test]
    fn normal_mean_converges() {
        let d = Normal::new(10.0, 3.0).unwrap();
        let m = empirical_mean(&d, 50_000, 3);
        assert!((m - 10.0).abs() < 0.1, "m={m}");
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let d = LogNormal::with_mean(5.0, 0.4).unwrap();
        assert!((d.mean() - 5.0).abs() < 1e-9);
        let m = empirical_mean(&d, 100_000, 4);
        assert!((m - 5.0).abs() / 5.0 < 0.03, "m={m}");
    }

    #[test]
    fn lognormal_strictly_positive() {
        let d = LogNormal::with_mean(1.0, 1.0).unwrap();
        let mut rng = RngStream::from_seed(5, "ln");
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(d.mean(), 4.0);
        let mut rng = RngStream::from_seed(6, "u");
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&v));
        }
    }

    #[test]
    fn gamma_mean_converges_shape_above_one() {
        let d = Gamma::new(3.0, 2.0).unwrap();
        let m = empirical_mean(&d, 50_000, 7);
        assert!((m - 6.0).abs() / 6.0 < 0.03, "m={m}");
    }

    #[test]
    fn gamma_mean_converges_shape_below_one() {
        let d = Gamma::new(0.5, 4.0).unwrap();
        let m = empirical_mean(&d, 100_000, 8);
        assert!((m - 2.0).abs() / 2.0 < 0.05, "m={m}");
    }

    #[test]
    fn gamma_positive() {
        let d = Gamma::new(0.3, 1.0).unwrap();
        let mut rng = RngStream::from_seed(9, "g");
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_minimum() {
        let d = Pareto::new(1.5, 2.5).unwrap();
        let mut rng = RngStream::from_seed(10, "p");
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.5);
        }
    }

    #[test]
    fn pareto_mean() {
        let d = Pareto::new(1.0, 3.0).unwrap();
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert_eq!(Pareto::new(1.0, 0.5).unwrap().mean(), f64::INFINITY);
        let m = empirical_mean(&d, 200_000, 11);
        assert!((m - 1.5).abs() / 1.5 < 0.05, "m={m}");
    }

    #[test]
    fn constructors_reject_invalid() {
        assert!(Normal::new(0.0, -1.0).is_none());
        assert!(Uniform::new(1.0, 1.0).is_none());
        assert!(Gamma::new(0.0, 1.0).is_none());
        assert!(Pareto::new(0.0, 1.0).is_none());
        assert!(LogNormal::with_mean(0.0, 1.0).is_none());
    }
}
