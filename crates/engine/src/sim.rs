//! A minimal simulation driver, generic over its event representation.
//!
//! Domain models schedule events on the virtual clock;
//! [`Simulation::run_until`] executes them in deterministic order. The
//! driver is intentionally small — most heavy lifting lives in the domain
//! crates — but centralizing clock advancement here guarantees the "time
//! never goes backwards" invariant everywhere.
//!
//! The event type is pluggable through [`SimEvent`]. The default,
//! [`Callback`], is a boxed closure — the original callback API, unchanged
//! for every existing caller. Hot simulation loops (the fleet) instead
//! define a small `Copy` event enum and dispatch in [`SimEvent::fire`],
//! which removes the per-event box allocation entirely: the queue then
//! stores plain values, and a steady-state run allocates nothing per event.

use crate::queue::{EventQueue, QueueKind};
use crate::time::{SimDuration, SimTime};
use std::marker::PhantomData;

/// A boxed event handler: receives the simulation so it can schedule more
/// events.
pub type Handler<S> = Box<dyn FnOnce(&mut Simulation<S>, &mut S)>;

/// What a scheduled event does when its time comes.
///
/// Implementors are plain values (ideally small and `Copy`); `fire`
/// consumes the event with full access to the simulation (to schedule
/// follow-ups) and the domain state.
pub trait SimEvent<S>: Sized + 'static {
    /// Executes the event at its scheduled time.
    fn fire(self, sim: &mut Simulation<S, Self>, state: &mut S);
}

/// The default event representation: a boxed `FnOnce` closure.
pub struct Callback<S>(Handler<S>);

impl<S: 'static> SimEvent<S> for Callback<S> {
    fn fire(self, sim: &mut Simulation<S, Self>, state: &mut S) {
        (self.0)(sim, state)
    }
}

/// A snapshot of a simulation's run counters, for post-run introspection
/// and the events/sec benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events executed so far.
    pub executed: u64,
    /// Handlers ever scheduled (executed + pending + any dropped on exit).
    pub scheduled: u64,
    /// The most events that were ever pending at once.
    pub peak_pending: usize,
}

/// A discrete-event simulation over domain state `S` with event
/// representation `E` (boxed closures by default).
///
/// # Examples
///
/// ```
/// use sizeless_engine::sim::Simulation;
/// use sizeless_engine::time::{SimDuration, SimTime};
///
/// let mut sim: Simulation<Vec<f64>> = Simulation::new();
/// sim.schedule_in(SimDuration::from_millis(10.0), |sim, log| {
///     log.push(sim.now().as_millis());
/// });
/// let mut log = Vec::new();
/// sim.run_until(SimTime::from_millis(100.0), &mut log);
/// assert_eq!(log, vec![10.0]);
/// ```
pub struct Simulation<S, E = Callback<S>> {
    clock: SimTime,
    events: EventQueue<E>,
    executed: u64,
    _state: PhantomData<fn(&mut S)>,
}

impl<S, E> std::fmt::Debug for Simulation<S, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("clock", &self.clock)
            .field("pending", &self.events.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S, E: SimEvent<S>> Simulation<S, E> {
    /// Creates a simulation with the clock at zero and heap-backed storage.
    pub fn new() -> Self {
        Self::with_queue(QueueKind::Heap, 0)
    }

    /// Creates a simulation with the chosen event-queue representation,
    /// pre-reserved for `capacity` pending events (a growth hint — pass the
    /// expected steady-state queue depth, not the total event count).
    pub fn with_queue(kind: QueueKind, capacity: usize) -> Self {
        Simulation {
            clock: SimTime::ZERO,
            events: EventQueue::with_capacity(kind, capacity),
            executed: 0,
            _state: PhantomData,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// A snapshot of the run counters: events executed, handlers ever
    /// scheduled, and the queue-depth high-water mark.
    pub fn stats(&self) -> SimStats {
        SimStats {
            executed: self.executed,
            scheduled: self.events.scheduled(),
            peak_pending: self.events.high_water(),
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.clock,
            "cannot schedule an event in the past ({at} < {})",
            self.clock
        );
        self.events.schedule(at, event);
    }

    /// Schedules `event` after a delay from the current clock.
    pub fn schedule_event_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_event_at(self.clock + delay, event);
    }

    /// The virtual time of the next pending event, if any.
    ///
    /// Lets an external driver merge several simulations into one
    /// deterministic timeline: peek every clock, advance the earliest (ties
    /// broken by the driver, e.g. lowest index), repeat — the multi-region
    /// fleet runner does exactly this.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Executes exactly one event (the earliest pending), advancing the
    /// clock to its time. Returns `false` when no event is pending.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.events.pop() {
            Some((t, event)) => {
                debug_assert!(t >= self.clock, "event queue returned a past event");
                self.clock = t;
                event.fire(self, state);
                self.executed += 1;
                true
            }
            None => false,
        }
    }

    /// Runs events until the queue drains or the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at the deadline still run. Returns the number
    /// of events executed by this call.
    pub fn run_until(&mut self, deadline: SimTime, state: &mut S) -> u64 {
        let before = self.executed;
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            // lint: allow(panic002) reason="pop follows a successful peek on the same queue with no intervening mutation"
            let (t, event) = self.events.pop().expect("peeked event must exist");
            debug_assert!(t >= self.clock, "event queue returned a past event");
            self.clock = t;
            event.fire(self, state);
            self.executed += 1;
        }
        // The clock advances to the deadline even if no event lands on it.
        if self.clock < deadline {
            self.clock = deadline;
        }
        self.executed - before
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self, state: &mut S) -> u64 {
        let before = self.executed;
        while self.step(state) {}
        self.executed - before
    }
}

/// The closure-scheduling sugar, available on the default (callback) event
/// representation only: boxes the closure into a [`Callback`] event.
impl<S: 'static> Simulation<S, Callback<S>> {
    /// Schedules `handler` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Simulation<S>, &mut S) + 'static,
    ) {
        self.schedule_event_at(at, Callback(Box::new(handler)));
    }

    /// Schedules `handler` after a delay from the current clock.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut Simulation<S>, &mut S) + 'static,
    ) {
        self.schedule_at(self.clock + delay, handler);
    }
}

impl<S, E: SimEvent<S>> Default for Simulation<S, E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_order_and_advance_clock() {
        let mut sim: Simulation<Vec<f64>> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(5.0), |s, log| {
            log.push(s.now().as_millis())
        });
        sim.schedule_at(SimTime::from_millis(2.0), |s, log| {
            log.push(s.now().as_millis())
        });
        let mut log = Vec::new();
        sim.run_to_completion(&mut log);
        assert_eq!(log, vec![2.0, 5.0]);
        assert_eq!(sim.now().as_millis(), 5.0);
        assert_eq!(sim.executed_events(), 2);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim: Simulation<Vec<&'static str>> = Simulation::new();
        sim.schedule_in(SimDuration::from_millis(1.0), |sim, log| {
            log.push("first");
            sim.schedule_in(SimDuration::from_millis(1.0), |_, log| {
                log.push("second");
            });
        });
        let mut log = Vec::new();
        sim.run_to_completion(&mut log);
        assert_eq!(log, vec!["first", "second"]);
        assert_eq!(sim.now().as_millis(), 2.0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Simulation<u32> = Simulation::new();
        for i in 1..=10 {
            sim.schedule_at(SimTime::from_millis(i as f64), |_, count| *count += 1);
        }
        let mut count = 0;
        let ran = sim.run_until(SimTime::from_millis(4.0), &mut count);
        assert_eq!(ran, 4);
        assert_eq!(count, 4);
        assert_eq!(sim.pending_events(), 6);
        assert_eq!(sim.now().as_millis(), 4.0);
    }

    #[test]
    fn run_until_advances_clock_with_no_events() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.run_until(SimTime::from_millis(50.0), &mut ());
        assert_eq!(sim.now().as_millis(), 50.0);
    }

    #[test]
    fn deadline_inclusive() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(4.0), |_, c| *c += 1);
        let mut c = 0;
        sim.run_until(SimTime::from_millis(4.0), &mut c);
        assert_eq!(c, 1);
    }

    #[test]
    fn step_executes_exactly_one_event() {
        let mut sim: Simulation<Vec<f64>> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(3.0), |s, log| {
            log.push(s.now().as_millis())
        });
        sim.schedule_at(SimTime::from_millis(7.0), |s, log| {
            log.push(s.now().as_millis())
        });
        let mut log = Vec::new();
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(3.0)));
        assert!(sim.step(&mut log));
        assert_eq!(log, vec![3.0]);
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(7.0)));
        assert!(sim.step(&mut log));
        assert!(!sim.step(&mut log), "drained queue steps no further");
        assert_eq!(sim.peek_time(), None);
        assert_eq!(log, vec![3.0, 7.0]);
    }

    #[test]
    fn stats_reports_executed_scheduled_and_peak() {
        let mut sim: Simulation<u32> = Simulation::new();
        for i in 1..=4 {
            sim.schedule_at(SimTime::from_millis(i as f64), |_, c| *c += 1);
        }
        assert_eq!(sim.stats(), SimStats { executed: 0, scheduled: 4, peak_pending: 4 });
        let mut c = 0;
        sim.run_to_completion(&mut c);
        assert_eq!(sim.stats(), SimStats { executed: 4, scheduled: 4, peak_pending: 4 });
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule_at(SimTime::from_millis(5.0), |_, _| {});
        sim.run_to_completion(&mut ());
        sim.schedule_at(SimTime::from_millis(1.0), |_, _| {});
    }

    /// A typed (non-callback) event representation: no boxing anywhere.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Tick {
        Once(u32),
        Chain { left: u32 },
    }

    impl SimEvent<Vec<u32>> for Tick {
        fn fire(self, sim: &mut Simulation<Vec<u32>, Tick>, log: &mut Vec<u32>) {
            match self {
                Tick::Once(v) => log.push(v),
                Tick::Chain { left } => {
                    log.push(left);
                    if left > 0 {
                        sim.schedule_event_in(
                            SimDuration::from_millis(1.0),
                            Tick::Chain { left: left - 1 },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn typed_events_fire_in_order_and_chain() {
        let mut sim: Simulation<Vec<u32>, Tick> =
            Simulation::with_queue(QueueKind::calendar(), 16);
        sim.schedule_event_at(SimTime::from_millis(5.0), Tick::Once(50));
        sim.schedule_event_at(SimTime::from_millis(1.0), Tick::Chain { left: 2 });
        let mut log = Vec::new();
        sim.run_to_completion(&mut log);
        assert_eq!(log, vec![2, 1, 0, 50]);
        assert_eq!(sim.now().as_millis(), 5.0);
        assert_eq!(sim.stats().executed, 4);
    }
}
