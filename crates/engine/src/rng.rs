//! Reproducible random-number streams.
//!
//! Every experiment in this reproduction is seeded. A single master seed is
//! fanned out into independent named streams (arrivals, service latencies,
//! monitoring noise, model initialization, …) so that changing how many draws
//! one subsystem makes does not perturb any other subsystem — the classic
//! "common random numbers" discipline for simulation studies.

use rand::{Rng, RngExt, SeedableRng, TryRng};
use rand_chacha::ChaCha8Rng;
use std::convert::Infallible;

/// A named, seedable random stream (ChaCha8 under the hood).
///
/// # Examples
///
/// ```
/// use sizeless_engine::rng::RngStream;
///
/// let mut a = RngStream::from_seed(7, "arrivals");
/// let mut b = RngStream::from_seed(7, "arrivals");
/// assert_eq!(a.next_f64(), b.next_f64()); // same seed + label → same stream
///
/// let mut c = RngStream::from_seed(7, "noise");
/// assert_ne!(a.next_f64(), c.next_f64()); // different label → different stream
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    inner: ChaCha8Rng,
}

impl RngStream {
    /// Derives a stream from a master seed and a stream label.
    ///
    /// The label is hashed (FNV-1a) into the seed so that streams with
    /// different labels are decorrelated even under the same master seed.
    pub fn from_seed(master_seed: u64, label: &str) -> Self {
        let mixed = fnv1a(label).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ master_seed;
        RngStream {
            inner: ChaCha8Rng::seed_from_u64(mixed),
        }
    }

    /// Derives a sub-stream, e.g. one per generated function.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_engine::rng::RngStream;
    ///
    /// let root = RngStream::from_seed(1, "funcgen");
    /// let mut f0 = root.derive("function-0");
    /// let mut f1 = root.derive("function-1");
    /// assert_ne!(f0.next_f64(), f1.next_f64());
    /// ```
    pub fn derive(&self, label: &str) -> Self {
        // Derivation depends only on the parent's seed stream identity, not
        // on how many values were drawn from it, so layouts stay stable.
        let base = self.inner.get_seed();
        let mut acc = fnv1a(label);
        for chunk in base.chunks(8) {
            let mut bytes = [0u8; 8];
            bytes[..chunk.len()].copy_from_slice(chunk);
            acc = acc.rotate_left(13) ^ u64::from_le_bytes(bytes);
        }
        RngStream {
            inner: ChaCha8Rng::seed_from_u64(acc),
        }
    }

    /// Next uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Next uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must be non-empty");
        lo + (hi - lo) * self.next_f64()
    }

    /// Next integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.random_range(0..n)
    }

    /// Next integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "int_range requires lo <= hi");
        self.inner.random_range(lo..=hi)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Standard-normal draw via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by shifting the first uniform into (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

// Implementing `TryRng<Error = Infallible>` grants the blanket `Rng` impl,
// so an `RngStream` can be handed to any `rand`-based consumer.
impl TryRng for RngStream {
    type Error = Infallible;
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok(self.inner.next_u32())
    }
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.inner.next_u64())
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        self.inner.fill_bytes(dest);
        Ok(())
    }
}

/// FNV-1a over a string: the stable, dependency-free hash behind stream
/// labeling — and, exported, behind anything else that needs a
/// platform-stable fingerprint (e.g. artifact config hashes).
pub fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed_and_label() {
        let mut a = RngStream::from_seed(99, "x");
        let mut b = RngStream::from_seed(99, "x");
        for _ in 0..100 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn labels_decorrelate() {
        let mut a = RngStream::from_seed(99, "x");
        let mut b = RngStream::from_seed(99, "y");
        let va: Vec<f64> = (0..10).map(|_| a.next_f64()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.next_f64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = RngStream::from_seed(1, "x");
        let mut b = RngStream::from_seed(2, "x");
        assert_ne!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn derive_is_independent_of_parent_draws() {
        let mut p1 = RngStream::from_seed(5, "root");
        let p2 = RngStream::from_seed(5, "root");
        let _ = p1.next_f64(); // consume from p1 only
        let mut c1 = p1.derive("child");
        let mut c2 = p2.derive("child");
        assert_eq!(c1.next_f64(), c2.next_f64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = RngStream::from_seed(3, "u");
        for _ in 0..1000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn index_respects_bounds() {
        let mut r = RngStream::from_seed(3, "i");
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn int_range_inclusive() {
        let mut r = RngStream::from_seed(3, "ir");
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.int_range(1, 3);
            assert!((1..=3).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::from_seed(3, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = RngStream::from_seed(8, "s");
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = RngStream::from_seed(12, "n");
        let xs: Vec<f64> = (0..20_000).map(|_| r.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_uniform_panics() {
        let mut r = RngStream::from_seed(0, "p");
        let _ = r.uniform(1.0, 1.0);
    }
}
