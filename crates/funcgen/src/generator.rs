//! Random composition of segments into synthetic functions.
//!
//! The paper's generator randomly combines function segments, wraps them in
//! a Lambda handler, and keeps a list of already-generated function hashes
//! so no function is generated twice. The Rust equivalent composes sampled
//! [`Stage`]s into a [`ResourceProfile`] and hashes the quantized stage
//! parameters for deduplication.

use crate::segment::SegmentKind;
use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;
use sizeless_platform::{ResourceProfile, Stage};
use std::collections::HashSet;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Configuration of the synthetic function generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Minimum segments per function.
    pub min_segments: usize,
    /// Maximum segments per function.
    pub max_segments: usize,
    /// Maximum attempts to find a not-yet-generated function before
    /// panicking (duplicate-space exhaustion guard).
    pub max_dedup_attempts: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_segments: 1,
            max_segments: 5,
            max_dedup_attempts: 64,
        }
    }
}

/// A generated synthetic function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedFunction {
    /// Sequential id (also used in the function name).
    pub id: usize,
    /// The segments the function was composed from, in order.
    pub segments: Vec<SegmentKind>,
    /// The compiled resource profile.
    pub profile: ResourceProfile,
}

/// The synthetic function generator with hash-based deduplication.
#[derive(Debug)]
pub struct FunctionGenerator {
    config: GeneratorConfig,
    seen: HashSet<u64>,
    next_id: usize,
}

impl FunctionGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `min_segments` is zero or exceeds `max_segments`.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(
            config.min_segments >= 1 && config.min_segments <= config.max_segments,
            "segment bounds must satisfy 1 <= min <= max"
        );
        FunctionGenerator {
            config,
            seen: HashSet::new(),
            next_id: 0,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Number of functions generated so far.
    pub fn generated_count(&self) -> usize {
        self.next_id
    }

    /// Generates one new, never-seen-before function.
    ///
    /// # Panics
    ///
    /// Panics if `max_dedup_attempts` consecutive candidates were all
    /// duplicates (practically impossible with continuous parameters).
    pub fn generate(&mut self, rng: &mut RngStream) -> GeneratedFunction {
        for _ in 0..self.config.max_dedup_attempts {
            let count = self
                .config
                .min_segments
                + rng.index(self.config.max_segments - self.config.min_segments + 1);
            let mut segments = Vec::with_capacity(count);
            let mut stages: Vec<Stage> = Vec::with_capacity(count);
            for _ in 0..count {
                let kind = *rng.choose(&SegmentKind::ALL);
                segments.push(kind);
                stages.push(kind.sample_stage(rng));
            }
            let hash = function_hash(&segments, &stages);
            if !self.seen.insert(hash) {
                continue; // duplicate — the paper's generator also retries
            }
            let id = self.next_id;
            self.next_id += 1;
            let profile = ResourceProfile::builder(format!("synthetic-{id:04}"))
                .stages(stages)
                .baseline_working_set_mb(rng.uniform(36.0, 52.0))
                .init_cpu_ms(rng.uniform(25.0, 90.0))
                .package_size_mb(rng.uniform(0.8, 12.0))
                .build();
            return GeneratedFunction {
                id,
                segments,
                profile,
            };
        }
        panic!(
            "exhausted {} dedup attempts — segment parameter space too small",
            self.config.max_dedup_attempts
        );
    }

    /// Generates `n` distinct functions.
    pub fn generate_many(&mut self, n: usize, rng: &mut RngStream) -> Vec<GeneratedFunction> {
        (0..n).map(|_| self.generate(rng)).collect()
    }
}

/// Hashes a function's segment sequence and quantized stage parameters.
///
/// Parameters are quantized (0.1 ms / 0.1 KB buckets) so that two floats
/// differing only in noise-level digits still count as "the same function",
/// mirroring the paper's source-level hash.
fn function_hash(segments: &[SegmentKind], stages: &[Stage]) -> u64 {
    let mut h = DefaultHasher::new();
    for (seg, stage) in segments.iter().zip(stages) {
        seg.name().hash(&mut h);
        quantize(stage.cpu_ms).hash(&mut h);
        quantize(stage.parallelism).hash(&mut h);
        quantize(stage.io_read_kb).hash(&mut h);
        quantize(stage.io_write_kb).hash(&mut h);
        quantize(stage.net_in_kb).hash(&mut h);
        quantize(stage.net_out_kb).hash(&mut h);
        quantize(stage.working_set_mb).hash(&mut h);
        for call in &stage.service_calls {
            call.kind.to_string().hash(&mut h);
            call.calls.hash(&mut h);
            quantize(call.payload_kb).hash(&mut h);
        }
    }
    h.finish()
}

fn quantize(x: f64) -> u64 {
    (x * 10.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_unique_names() {
        let mut g = FunctionGenerator::new(GeneratorConfig::default());
        let mut rng = RngStream::from_seed(1, "gen");
        let fns = g.generate_many(200, &mut rng);
        assert_eq!(fns.len(), 200);
        assert_eq!(g.generated_count(), 200);
        let names: HashSet<&str> = fns.iter().map(|f| f.profile.name()).collect();
        assert_eq!(names.len(), 200);
    }

    #[test]
    fn segment_counts_respect_bounds() {
        let cfg = GeneratorConfig {
            min_segments: 2,
            max_segments: 4,
            ..GeneratorConfig::default()
        };
        let mut g = FunctionGenerator::new(cfg);
        let mut rng = RngStream::from_seed(2, "gen-bounds");
        for f in g.generate_many(300, &mut rng) {
            assert!((2..=4).contains(&f.segments.len()));
            assert_eq!(f.segments.len(), f.profile.stages().len());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let run = |seed| {
            let mut g = FunctionGenerator::new(GeneratorConfig::default());
            let mut rng = RngStream::from_seed(seed, "gen-det");
            g.generate_many(50, &mut rng)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn all_segment_kinds_appear_in_a_large_batch() {
        let mut g = FunctionGenerator::new(GeneratorConfig::default());
        let mut rng = RngStream::from_seed(3, "gen-cover");
        let fns = g.generate_many(500, &mut rng);
        let used: HashSet<SegmentKind> =
            fns.iter().flat_map(|f| f.segments.iter().copied()).collect();
        assert_eq!(used.len(), SegmentKind::ALL.len());
    }

    #[test]
    fn duplicate_hashes_are_rejected() {
        let segments = vec![SegmentKind::Fibonacci];
        let mut rng = RngStream::from_seed(4, "gen-dup");
        let stage = SegmentKind::Fibonacci.sample_stage(&mut rng);
        let h1 = function_hash(&segments, std::slice::from_ref(&stage));
        let h2 = function_hash(&segments, std::slice::from_ref(&stage));
        assert_eq!(h1, h2);
        // A perturbation above the quantum changes the hash.
        let mut other = stage;
        other.cpu_ms += 5.0;
        assert_ne!(h1, function_hash(&segments, &[other]));
    }

    #[test]
    fn quantization_absorbs_noise_level_differences() {
        let mut a = SegmentKind::Fibonacci.sample_stage(&mut RngStream::from_seed(5, "q"));
        let mut b = a.clone();
        a.cpu_ms = 100.0;
        b.cpu_ms = 100.004; // below the 0.1 quantum
        let seg = vec![SegmentKind::Fibonacci];
        assert_eq!(function_hash(&seg, &[a]), function_hash(&seg, &[b]));
    }

    #[test]
    fn profiles_have_positive_footprints() {
        let mut g = FunctionGenerator::new(GeneratorConfig::default());
        let mut rng = RngStream::from_seed(6, "gen-foot");
        for f in g.generate_many(100, &mut rng) {
            assert!(f.profile.baseline_working_set_mb() > 0.0);
            assert!(f.profile.package_size_mb() > 0.0);
            assert!(f.profile.peak_working_set_mb() < 2400.0, "fits largest size");
        }
    }

    #[test]
    #[should_panic(expected = "segment bounds")]
    fn zero_min_segments_rejected() {
        let _ = FunctionGenerator::new(GeneratorConfig {
            min_segments: 0,
            max_segments: 3,
            ..GeneratorConfig::default()
        });
    }
}
