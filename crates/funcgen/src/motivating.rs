//! The four motivating functions of the paper's Figure 1.
//!
//! Calibrated to reproduce the qualitative shapes reported in the paper
//! (data originally from Casalboni's Lambda power-tuning measurements):
//!
//! * `InvertMatrix` — execution time halves from 128→256 MB (−49.6%) and
//!   keeps decreasing almost linearly (single-threaded CPU, plateau only
//!   past 1792 MB).
//! * `PrimeNumbers` — scales super-linearly up to 2048 MB (−92.9% with
//!   −13.3% cost) thanks to parallel computation, and keeps speeding up at
//!   3008 MB at increased cost.
//! * `DynamoDB` — time drops steeply until 512 MB (−86.6%) then barely
//!   improves while cost rises (+587.5% at 3008 MB).
//! * `API-Call` — flat execution time; more memory only adds cost.

use serde::{Deserialize, Serialize};
use sizeless_platform::{ResourceProfile, ServiceCall, ServiceKind, Stage};
use std::fmt;

/// One of the four Figure-1 functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MotivatingFunction {
    /// Creates and inverts a random matrix.
    InvertMatrix,
    /// Calculates the first million primes a thousand times.
    PrimeNumbers,
    /// Executes three queries against a DynamoDB table.
    DynamoDb,
    /// Calls an external API.
    ApiCall,
}

impl MotivatingFunction {
    /// All four functions in Figure-1 order.
    pub const ALL: [MotivatingFunction; 4] = [
        MotivatingFunction::InvertMatrix,
        MotivatingFunction::PrimeNumbers,
        MotivatingFunction::DynamoDb,
        MotivatingFunction::ApiCall,
    ];

    /// The calibrated resource profile.
    pub fn profile(self) -> ResourceProfile {
        match self {
            MotivatingFunction::InvertMatrix => ResourceProfile::builder("InvertMatrix")
                // ~700 ms of single-threaded linear algebra at one vCPU
                // → ~9.8 s at 128 MB, ~4.9 s at 256 MB, ~0.7 s at ≥1792 MB.
                .stage(
                    Stage::cpu("invert", 700.0)
                        .with_working_set(28.0)
                        .with_alloc_churn(30.0),
                )
                .build(),
            MotivatingFunction::PrimeNumbers => ResourceProfile::builder("PrimeNumbers")
                // Heavy, partially parallel sieve: keeps scaling past one
                // vCPU, matching the paper's super-linear observation.
                .stage(Stage::cpu_parallel("sieve", 2500.0, 2.2).with_working_set(12.0))
                .build(),
            MotivatingFunction::DynamoDb => ResourceProfile::builder("DynamoDB")
                // Three queries plus marshalling CPU; the 95 MB working set
                // adds GC pressure at 128 MB, steepening the early decline.
                .stage(
                    Stage::service(
                        "queries",
                        ServiceCall::new(ServiceKind::DynamoDb, 3, 40.0),
                    )
                    .with_cpu(10.0, 1.0)
                    .with_working_set(55.0),
                )
                .build(),
            MotivatingFunction::ApiCall => ResourceProfile::builder("API-Call")
                // Slow external HTTP calls dominate at every size.
                .stage(
                    Stage::service(
                        "api",
                        ServiceCall::new(ServiceKind::ExternalApi, 3, 4.0),
                    )
                    .with_cpu(2.0, 1.0)
                    .with_working_set(2.0),
                )
                .build(),
        }
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            MotivatingFunction::InvertMatrix => "InvertMatrix",
            MotivatingFunction::PrimeNumbers => "PrimeNumbers",
            MotivatingFunction::DynamoDb => "DynamoDB",
            MotivatingFunction::ApiCall => "API-Call",
        }
    }
}

impl fmt::Display for MotivatingFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizeless_platform::{MemorySize, Platform};

    fn durations(f: MotivatingFunction) -> Vec<f64> {
        let p = Platform::aws_like();
        let profile = f.profile();
        MemorySize::STANDARD
            .iter()
            .map(|&m| p.expected_duration_ms(&profile, m))
            .collect()
    }

    #[test]
    fn invert_matrix_halves_from_128_to_256() {
        let d = durations(MotivatingFunction::InvertMatrix);
        let drop = 1.0 - d[1] / d[0];
        assert!((drop - 0.496).abs() < 0.05, "drop={drop}");
    }

    #[test]
    fn prime_numbers_speedup_at_2048_exceeds_90_percent() {
        let d = durations(MotivatingFunction::PrimeNumbers);
        let drop = 1.0 - d[4] / d[0]; // 2048 vs 128
        assert!(drop > 0.9, "drop={drop}");
        // And 3008 is faster still (parallel work keeps scaling).
        assert!(d[5] < d[4]);
    }

    #[test]
    fn dynamodb_flattens_after_512() {
        let d = durations(MotivatingFunction::DynamoDb);
        let early_drop = 1.0 - d[2] / d[0]; // 512 vs 128
        assert!(early_drop > 0.7, "early_drop={early_drop}");
        // The decline per memory doubling collapses after 512 MB.
        let late_drop = 1.0 - d[5] / d[2]; // 3008 vs 512
        assert!(late_drop < 0.65, "late_drop={late_drop}");
        assert!(early_drop > late_drop);
    }

    #[test]
    fn api_call_is_flat() {
        let d = durations(MotivatingFunction::ApiCall);
        let drop = 1.0 - d[5] / d[0];
        assert!(drop.abs() < 0.15, "drop={drop}");
    }

    #[test]
    fn api_call_cost_rises_with_memory() {
        let p = Platform::aws_like();
        let profile = MotivatingFunction::ApiCall.profile();
        let c128 = p.expected_cost_usd(&profile, MemorySize::MB_128);
        let c3008 = p.expected_cost_usd(&profile, MemorySize::MB_3008);
        assert!(c3008 > 5.0 * c128, "flat time → cost scales with memory");
    }

    #[test]
    fn prime_numbers_is_cheaper_at_2048_than_128() {
        // The paper's headline: 92.9% faster AND 13.3% cheaper.
        let p = Platform::aws_like();
        let profile = MotivatingFunction::PrimeNumbers.profile();
        let c128 = p.expected_cost_usd(&profile, MemorySize::MB_128);
        let c2048 = p.expected_cost_usd(&profile, MemorySize::MB_2048);
        assert!(c2048 < c128, "c128={c128} c2048={c2048}");
    }

    #[test]
    fn names_match_figure_1() {
        let names: Vec<&str> = MotivatingFunction::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec!["InvertMatrix", "PrimeNumbers", "DynamoDB", "API-Call"]
        );
    }
}
