//! The sixteen representative function segments.
//!
//! Each segment is "the smallest granularity of a common task in serverless
//! functions" (paper, Section 3.1) and comes with its own inputs — here,
//! parameter ranges sampled at generation time, so two functions using the
//! same segment still differ. The mix covers the survey-derived task classes:
//! CPU-intensive work, image manipulation, format conversion, data
//! compression, file interaction, and external-service interaction.

use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;
use sizeless_platform::{ServiceCall, ServiceKind, Stage};
use std::fmt;

/// One of the sixteen segment types.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[non_exhaustive]
pub enum SegmentKind {
    /// Create and invert a random matrix (single-threaded CPU, working set
    /// grows with matrix size) — like the paper's `InvertMatrix`.
    MatrixInversion,
    /// Compute prime numbers with worker threads (parallel CPU) — like the
    /// paper's `PrimeNumbers`, which scales super-linearly.
    PrimeNumbers,
    /// Naive recursive Fibonacci (single-threaded CPU, tiny working set).
    Fibonacci,
    /// Resize an image (libuv-pool codec: parallel CPU + file read).
    ImageResize,
    /// Grayscale an image (lighter parallel CPU + file read).
    ImageGrayscale,
    /// zlib-compress a buffer (parallel CPU + file I/O + churn).
    Compression,
    /// Transform a JSON document (single CPU, allocation churn).
    JsonTransform,
    /// Convert CSV to JSON (single CPU + file read + churn).
    CsvToJson,
    /// PBKDF2/hash computation (libuv pool: highly parallel CPU).
    CryptoHash,
    /// Regex extraction over text (single CPU, working set).
    RegexExtract,
    /// Read a file from scratch space (I/O read).
    FileRead,
    /// Write a file to scratch space (I/O write).
    FileWrite,
    /// Query a DynamoDB table (service calls, small payloads).
    DynamoDbQuery,
    /// Download an object from S3 (service call, large payload).
    S3Read,
    /// Upload an object to S3 (service call, large payload).
    S3Write,
    /// Call an external HTTP API (slow, memory-insensitive).
    ExternalApiCall,
}

impl SegmentKind {
    /// All sixteen segments.
    pub const ALL: [SegmentKind; 16] = [
        SegmentKind::MatrixInversion,
        SegmentKind::PrimeNumbers,
        SegmentKind::Fibonacci,
        SegmentKind::ImageResize,
        SegmentKind::ImageGrayscale,
        SegmentKind::Compression,
        SegmentKind::JsonTransform,
        SegmentKind::CsvToJson,
        SegmentKind::CryptoHash,
        SegmentKind::RegexExtract,
        SegmentKind::FileRead,
        SegmentKind::FileWrite,
        SegmentKind::DynamoDbQuery,
        SegmentKind::S3Read,
        SegmentKind::S3Write,
        SegmentKind::ExternalApiCall,
    ];

    /// Short name used in labels and hashes.
    pub fn name(self) -> &'static str {
        use SegmentKind::*;
        match self {
            MatrixInversion => "matrix_inversion",
            PrimeNumbers => "prime_numbers",
            Fibonacci => "fibonacci",
            ImageResize => "image_resize",
            ImageGrayscale => "image_grayscale",
            Compression => "compression",
            JsonTransform => "json_transform",
            CsvToJson => "csv_to_json",
            CryptoHash => "crypto_hash",
            RegexExtract => "regex_extract",
            FileRead => "file_read",
            FileWrite => "file_write",
            DynamoDbQuery => "dynamodb_query",
            S3Read => "s3_read",
            S3Write => "s3_write",
            ExternalApiCall => "external_api_call",
        }
    }

    /// The managed service this segment calls, if any. Note the set is
    /// deliberately small — the case-study apps use services (Rekognition,
    /// Aurora, SQS, Kinesis, SNS, Step Functions) that *never* appear here,
    /// preserving the paper's synthetic→realistic transfer gap.
    pub fn service(self) -> Option<ServiceKind> {
        use SegmentKind::*;
        match self {
            DynamoDbQuery => Some(ServiceKind::DynamoDb),
            S3Read | S3Write => Some(ServiceKind::S3),
            ExternalApiCall => Some(ServiceKind::ExternalApi),
            _ => None,
        }
    }

    /// Samples a parameterized stage for this segment.
    ///
    /// Parameter ranges are wide enough that functions built from the same
    /// segments still cover a spread of resource-consumption profiles.
    pub fn sample_stage(self, rng: &mut RngStream) -> Stage {
        use SegmentKind::*;
        match self {
            MatrixInversion => {
                // Matrix dimension 100..=700 → CPU grows ~n³, memory ~n².
                let n = rng.uniform(100.0, 700.0);
                let cpu_ms = 2.0 + (n / 100.0).powi(3) * 1.4;
                let ws_mb = (n * n * 8.0 * 3.0) / 1.0e6; // three n×n f64 buffers
                Stage::cpu(self.name(), cpu_ms)
                    .with_working_set(ws_mb)
                    .with_alloc_churn(ws_mb * 0.6)
            }
            PrimeNumbers => {
                let limit_k = rng.uniform(50.0, 1200.0); // primes up to N·1000
                let cpu_ms = limit_k * 0.9;
                let par = rng.uniform(1.6, 2.6);
                Stage::cpu_parallel(self.name(), cpu_ms, par).with_working_set(4.0)
            }
            Fibonacci => {
                let cpu_ms = rng.uniform(5.0, 400.0);
                Stage::cpu(self.name(), cpu_ms).with_working_set(1.0)
            }
            ImageResize => {
                let image_kb = rng.uniform(200.0, 4000.0);
                let cpu_ms = image_kb * 0.06;
                Stage::file_io(self.name(), image_kb, image_kb * 0.4)
                    .with_cpu(cpu_ms, rng.uniform(2.2, 3.4))
                    .with_working_set(image_kb / 1024.0 * 6.0)
                    .with_alloc_churn(image_kb / 1024.0 * 3.0)
            }
            ImageGrayscale => {
                let image_kb = rng.uniform(200.0, 3000.0);
                let cpu_ms = image_kb * 0.025;
                Stage::file_io(self.name(), image_kb, image_kb * 0.9)
                    .with_cpu(cpu_ms, rng.uniform(1.8, 2.8))
                    .with_working_set(image_kb / 1024.0 * 4.0)
            }
            Compression => {
                let data_kb = rng.uniform(500.0, 8000.0);
                let cpu_ms = data_kb * 0.035;
                Stage::file_io(self.name(), data_kb, data_kb * 0.3)
                    .with_cpu(cpu_ms, rng.uniform(1.7, 2.4))
                    .with_working_set(data_kb / 1024.0 * 2.0)
                    .with_alloc_churn(data_kb / 1024.0)
            }
            JsonTransform => {
                let doc_mb = rng.uniform(0.2, 12.0);
                let cpu_ms = doc_mb * 9.0;
                Stage::cpu(self.name(), cpu_ms)
                    .with_working_set(doc_mb * 3.5)
                    .with_alloc_churn(doc_mb * 5.0)
            }
            CsvToJson => {
                let csv_kb = rng.uniform(100.0, 6000.0);
                let cpu_ms = csv_kb * 0.012;
                Stage::file_io(self.name(), csv_kb, 0.0)
                    .with_cpu(cpu_ms, 1.0)
                    .with_working_set(csv_kb / 1024.0 * 4.0)
                    .with_alloc_churn(csv_kb / 1024.0 * 2.0)
            }
            CryptoHash => {
                let iterations = rng.uniform(20.0, 600.0);
                let cpu_ms = iterations * 0.8;
                Stage::cpu_parallel(self.name(), cpu_ms, rng.uniform(2.8, 4.0))
                    .with_working_set(2.0)
            }
            RegexExtract => {
                let text_mb = rng.uniform(0.5, 20.0);
                let cpu_ms = text_mb * 6.0;
                Stage::cpu(self.name(), cpu_ms).with_working_set(text_mb * 1.8)
            }
            FileRead => {
                let kb = rng.uniform(256.0, 20_000.0);
                Stage::file_io(self.name(), kb, 0.0)
                    .with_cpu(kb * 0.0015, 1.0)
                    .with_working_set(kb / 1024.0)
            }
            FileWrite => {
                let kb = rng.uniform(256.0, 16_000.0);
                Stage::file_io(self.name(), 0.0, kb)
                    .with_cpu(kb * 0.001, 1.0)
                    .with_working_set(kb / 1024.0 * 0.5)
            }
            DynamoDbQuery => {
                let calls = rng.int_range(1, 6) as u32;
                let payload_kb = rng.uniform(0.5, 60.0);
                Stage::service(
                    self.name(),
                    ServiceCall::new(ServiceKind::DynamoDb, calls, payload_kb),
                )
                .with_cpu(rng.uniform(1.0, 8.0), 1.0)
                .with_working_set(1.0)
            }
            S3Read => {
                let payload_kb = rng.uniform(100.0, 20_000.0);
                Stage::service(
                    self.name(),
                    ServiceCall::new(ServiceKind::S3, 1, payload_kb),
                )
                .with_cpu(payload_kb * 0.0008, 1.0)
                .with_working_set(payload_kb / 1024.0)
            }
            S3Write => {
                let payload_kb = rng.uniform(100.0, 12_000.0);
                Stage::service(
                    self.name(),
                    ServiceCall::new(ServiceKind::S3, 1, payload_kb),
                )
                .with_cpu(payload_kb * 0.0006, 1.0)
                .with_working_set(payload_kb / 1024.0 * 0.6)
            }
            ExternalApiCall => {
                let calls = rng.int_range(1, 3) as u32;
                let payload_kb = rng.uniform(0.5, 40.0);
                Stage::service(
                    self.name(),
                    ServiceCall::new(ServiceKind::ExternalApi, calls, payload_kb),
                )
                .with_cpu(rng.uniform(0.5, 4.0), 1.0)
                .with_working_set(0.5)
            }
        }
    }
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_sixteen_distinct_segments() {
        assert_eq!(SegmentKind::ALL.len(), 16);
        let names: std::collections::BTreeSet<&str> =
            SegmentKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn stages_are_well_formed() {
        let mut rng = RngStream::from_seed(1, "seg");
        for kind in SegmentKind::ALL {
            for _ in 0..50 {
                let s = kind.sample_stage(&mut rng);
                assert!(s.cpu_ms >= 0.0, "{kind}");
                assert!(s.parallelism >= 1.0, "{kind}");
                assert!(s.working_set_mb >= 0.0, "{kind}");
                assert!(s.io_read_kb >= 0.0 && s.io_write_kb >= 0.0, "{kind}");
                assert_eq!(s.label, kind.name());
            }
        }
    }

    #[test]
    fn parameters_vary_between_samples() {
        let mut rng = RngStream::from_seed(2, "seg-vary");
        let a = SegmentKind::MatrixInversion.sample_stage(&mut rng);
        let b = SegmentKind::MatrixInversion.sample_stage(&mut rng);
        assert_ne!(a.cpu_ms, b.cpu_ms);
    }

    #[test]
    fn service_segments_declare_their_service() {
        assert_eq!(
            SegmentKind::DynamoDbQuery.service(),
            Some(ServiceKind::DynamoDb)
        );
        assert_eq!(SegmentKind::S3Read.service(), Some(ServiceKind::S3));
        assert_eq!(SegmentKind::Fibonacci.service(), None);
    }

    #[test]
    fn training_segments_never_use_case_study_only_services() {
        let forbidden = [
            ServiceKind::Rekognition,
            ServiceKind::Aurora,
            ServiceKind::Sqs,
            ServiceKind::Kinesis,
            ServiceKind::Sns,
            ServiceKind::StepFunctions,
        ];
        for kind in SegmentKind::ALL {
            if let Some(svc) = kind.service() {
                assert!(!forbidden.contains(&svc), "{kind} uses {svc}");
            }
        }
    }

    #[test]
    fn cpu_segments_have_cpu_service_segments_have_calls() {
        let mut rng = RngStream::from_seed(3, "seg-shape");
        let cpu = SegmentKind::Fibonacci.sample_stage(&mut rng);
        assert!(cpu.cpu_ms > 0.0);
        assert!(cpu.service_calls.is_empty());
        let svc = SegmentKind::DynamoDbQuery.sample_stage(&mut rng);
        assert!(!svc.service_calls.is_empty());
    }

    #[test]
    fn parallel_segments_exceed_single_thread() {
        let mut rng = RngStream::from_seed(4, "seg-par");
        let p = SegmentKind::CryptoHash.sample_stage(&mut rng);
        assert!(p.parallelism > 2.0);
        let s = SegmentKind::RegexExtract.sample_stage(&mut rng);
        assert_eq!(s.parallelism, 1.0);
    }
}
