//! The synthetic function generator — the paper's Section 3.1.
//!
//! Learning how memory size influences execution time requires a large
//! dataset of diverse functions; since not enough benchmarkable open-source
//! functions exist, the paper generates synthetic serverless functions by
//! randomly combining **sixteen representative function segments** (CPU
//! work, image manipulation, format conversion, compression, file I/O, and
//! calls to external services such as DynamoDB or S3).
//!
//! * [`segment`] — the sixteen [`SegmentKind`]s; each
//!   samples a parameterized [`Stage`](sizeless_platform::Stage) with a
//!   distinct resource-consumption shape.
//! * [`generator`] — the [`FunctionGenerator`]:
//!   random segment composition, wrapped into a
//!   [`ResourceProfile`](sizeless_platform::ResourceProfile) (the simulated
//!   "Lambda handler"), with hash-based deduplication so no function is
//!   generated twice.
//! * [`motivating`] — the four hand-written functions of the paper's
//!   Figure 1 (`InvertMatrix`, `PrimeNumbers`, `DynamoDB`, `API-Call`).
//!
//! # Examples
//!
//! ```
//! use sizeless_funcgen::prelude::*;
//! use sizeless_engine::RngStream;
//!
//! let mut generator = FunctionGenerator::new(GeneratorConfig::default());
//! let mut rng = RngStream::from_seed(1, "funcgen");
//! let f = generator.generate(&mut rng);
//! assert!(!f.profile.stages().is_empty());
//! ```

pub mod generator;
pub mod motivating;
pub mod segment;

/// Re-exports of the most used generator items.
pub mod prelude {
    pub use crate::generator::{FunctionGenerator, GeneratedFunction, GeneratorConfig};
    pub use crate::motivating::MotivatingFunction;
    pub use crate::segment::SegmentKind;
}

pub use generator::{FunctionGenerator, GeneratedFunction, GeneratorConfig};
pub use motivating::MotivatingFunction;
pub use segment::SegmentKind;
