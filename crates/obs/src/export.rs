//! Exporters and the matching parser for the structured event log.
//!
//! Two formats: JSONL (one self-describing object per line, the format
//! CI schema-validates and byte-compares) and the Chrome trace-event JSON
//! array, which loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! All serialization is hand-rolled over [`std::fmt::Write`]: field order is
//! fixed, floats use Rust's shortest-round-trip formatting, and no map types
//! are involved — identical runs therefore export byte-identical logs.

use std::fmt::Write as _;

use crate::event::{FaultKind, LoopPhase, ResizeCause, ThrottleCause, TraceEvent, TraceRecord};

/// Serializes records as JSONL: one event object per line, trailing newline
/// after every line.
pub fn jsonl(records: &[TraceRecord]) -> String {
    // ~96 bytes per line is a comfortable overestimate for every variant.
    let mut out = String::with_capacity(records.len() * 96 + 1);
    for rec in records {
        rec.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

/// Serializes records as a Chrome trace-event JSON array.
///
/// Every event becomes a global instant event (`"ph":"i"`, `"s":"g"`) whose
/// `ts` is the virtual time converted to microseconds and whose `tid` lanes
/// events by function id (or region/host for events without one), so the
/// Perfetto timeline groups each function's dispatches, resizes, and phase
/// transitions onto one track.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 128 + 2);
    out.push('[');
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        let tid = match rec.event {
            TraceEvent::Dispatch { fn_id, .. }
            | TraceEvent::ColdStart { fn_id, .. }
            | TraceEvent::Throttle { fn_id, .. }
            | TraceEvent::Resize { fn_id, .. }
            | TraceEvent::DriftDetected { fn_id }
            | TraceEvent::PhaseTransition { fn_id, .. }
            | TraceEvent::ShadowRoute { fn_id, .. }
            | TraceEvent::InvocationFailed { fn_id, .. }
            | TraceEvent::RetryScheduled { fn_id, .. }
            | TraceEvent::RegionFailover { fn_id, .. }
            | TraceEvent::DriftSuppressed { fn_id } => fn_id,
            TraceEvent::Eviction { host, .. }
            | TraceEvent::HostDown { host, .. }
            | TraceEvent::HostUp { host, .. } => host,
            TraceEvent::ArtifactUpdate { .. } => 0,
            TraceEvent::RegionHandoff { to_region, .. } => to_region,
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"fleet\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"g\",\"args\":",
            rec.event.kind(),
            rec.at_ms * 1000.0,
            tid
        );
        write_args(&mut out, rec);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Writes the event payload (plus `seq`) as the Chrome `args` object.
fn write_args(out: &mut String, rec: &TraceRecord) {
    let _ = write!(out, "{{\"seq\":{}", rec.seq);
    match rec.event {
        TraceEvent::Dispatch { fn_id, host, memory_mb, cold, shadow } => {
            let _ = write!(
                out,
                ",\"fn_id\":{fn_id},\"host\":{host},\"memory_mb\":{memory_mb},\"cold\":{cold},\"shadow\":{shadow}"
            );
        }
        TraceEvent::ColdStart { fn_id, host, memory_mb, init_ms } => {
            let _ = write!(
                out,
                ",\"fn_id\":{fn_id},\"host\":{host},\"memory_mb\":{memory_mb},\"init_ms\":{init_ms}"
            );
        }
        TraceEvent::Eviction { host, evicted } => {
            let _ = write!(out, ",\"host\":{host},\"evicted\":{evicted}");
        }
        TraceEvent::Throttle { fn_id, cause } => {
            let _ = write!(out, ",\"fn_id\":{fn_id},\"cause\":\"{}\"", cause.name());
        }
        TraceEvent::Resize { fn_id, from_mb, to_mb, cause } => {
            let _ = write!(
                out,
                ",\"fn_id\":{fn_id},\"from_mb\":{from_mb},\"to_mb\":{to_mb},\"cause\":\"{}\"",
                cause.name()
            );
        }
        TraceEvent::DriftDetected { fn_id } => {
            let _ = write!(out, ",\"fn_id\":{fn_id}");
        }
        TraceEvent::PhaseTransition { fn_id, from, to } => {
            let _ = write!(out, ",\"fn_id\":{fn_id},\"from\":\"{}\",\"to\":\"{}\"", from.name(), to.name());
        }
        TraceEvent::ShadowRoute { fn_id, base_mb } => {
            let _ = write!(out, ",\"fn_id\":{fn_id},\"base_mb\":{base_mb}");
        }
        TraceEvent::ArtifactUpdate { updates } => {
            let _ = write!(out, ",\"updates\":{updates}");
        }
        TraceEvent::RegionHandoff { from_region, to_region } => {
            let _ = write!(out, ",\"from_region\":{from_region},\"to_region\":{to_region}");
        }
        TraceEvent::HostDown { host, failed_in_flight, lost_warm } => {
            let _ = write!(
                out,
                ",\"host\":{host},\"failed_in_flight\":{failed_in_flight},\"lost_warm\":{lost_warm}"
            );
        }
        TraceEvent::HostUp { host, down_ms } => {
            let _ = write!(out, ",\"host\":{host},\"down_ms\":{down_ms}");
        }
        TraceEvent::InvocationFailed { fn_id, host, attempt, cause } => {
            let _ = write!(
                out,
                ",\"fn_id\":{fn_id},\"host\":{host},\"attempt\":{attempt},\"cause\":\"{}\"",
                cause.name()
            );
        }
        TraceEvent::RetryScheduled { fn_id, attempt, delay_ms } => {
            let _ = write!(out, ",\"fn_id\":{fn_id},\"attempt\":{attempt},\"delay_ms\":{delay_ms}");
        }
        TraceEvent::RegionFailover { fn_id, from_region, to_region } => {
            let _ = write!(
                out,
                ",\"fn_id\":{fn_id},\"from_region\":{from_region},\"to_region\":{to_region}"
            );
        }
        TraceEvent::DriftSuppressed { fn_id } => {
            let _ = write!(out, ",\"fn_id\":{fn_id}");
        }
    }
    out.push('}');
}

/// A malformed line encountered by [`parse_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSONL log produced by [`jsonl`] back into records.
///
/// This is a deliberately minimal scanner for the flat single-line objects
/// this crate emits (no nesting, no escapes inside strings) — enough for the
/// round-trip tests and post-hoc analysis of our own logs, not a general
/// JSON parser.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_fields(line, lineno)?;
        records.push(record_from_fields(&fields, lineno)?);
    }
    Ok(records)
}

/// One `"key":value` pair of a flat object, values left as raw text.
type Field<'a> = (&'a str, &'a str);

fn split_fields(line: &str, lineno: usize) -> Result<Vec<Field<'_>>, ParseError> {
    let err = |message: &str| ParseError { line: lineno, message: message.to_string() };
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err("expected a {...} object"))?;
    let mut fields = Vec::new();
    for part in inner.split(',') {
        let (key, value) = part.split_once(':').ok_or_else(|| err("expected \"key\":value"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| err("keys must be quoted"))?;
        fields.push((key, value.trim()));
    }
    Ok(fields)
}

fn record_from_fields(fields: &[Field<'_>], lineno: usize) -> Result<TraceRecord, ParseError> {
    let err = |message: String| ParseError { line: lineno, message };
    let raw = |key: &str| -> Result<&str, ParseError> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| err(format!("missing field `{key}`")))
    };
    let num = |key: &str| -> Result<f64, ParseError> {
        raw(key)?.parse::<f64>().map_err(|_| err(format!("field `{key}` is not a number")))
    };
    let int = |key: &str| -> Result<u64, ParseError> {
        raw(key)?.parse::<u64>().map_err(|_| err(format!("field `{key}` is not an integer")))
    };
    let id = |key: &str| -> Result<u32, ParseError> {
        raw(key)?.parse::<u32>().map_err(|_| err(format!("field `{key}` is not a u32")))
    };
    let boolean = |key: &str| -> Result<bool, ParseError> {
        raw(key)?.parse::<bool>().map_err(|_| err(format!("field `{key}` is not a bool")))
    };
    let string = |key: &str| -> Result<&str, ParseError> {
        raw(key)?
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| err(format!("field `{key}` is not a string")))
    };

    let at_ms = num("at_ms")?;
    let seq = int("seq")?;
    let kind = string("type")?;
    let event = match kind {
        "dispatch" => TraceEvent::Dispatch {
            fn_id: id("fn_id")?,
            host: id("host")?,
            memory_mb: id("memory_mb")?,
            cold: boolean("cold")?,
            shadow: boolean("shadow")?,
        },
        "cold_start" => TraceEvent::ColdStart {
            fn_id: id("fn_id")?,
            host: id("host")?,
            memory_mb: id("memory_mb")?,
            init_ms: num("init_ms")?,
        },
        "eviction" => TraceEvent::Eviction { host: id("host")?, evicted: id("evicted")? },
        "throttle" => TraceEvent::Throttle {
            fn_id: id("fn_id")?,
            cause: ThrottleCause::parse(string("cause")?)
                .ok_or_else(|| err("unknown throttle cause".to_string()))?,
        },
        "resize" => TraceEvent::Resize {
            fn_id: id("fn_id")?,
            from_mb: id("from_mb")?,
            to_mb: id("to_mb")?,
            cause: ResizeCause::parse(string("cause")?)
                .ok_or_else(|| err("unknown resize cause".to_string()))?,
        },
        "drift_detected" => TraceEvent::DriftDetected { fn_id: id("fn_id")? },
        "phase_transition" => TraceEvent::PhaseTransition {
            fn_id: id("fn_id")?,
            from: LoopPhase::parse(string("from")?)
                .ok_or_else(|| err("unknown phase".to_string()))?,
            to: LoopPhase::parse(string("to")?).ok_or_else(|| err("unknown phase".to_string()))?,
        },
        "shadow_route" => {
            TraceEvent::ShadowRoute { fn_id: id("fn_id")?, base_mb: id("base_mb")? }
        }
        "artifact_update" => TraceEvent::ArtifactUpdate { updates: int("updates")? },
        "region_handoff" => TraceEvent::RegionHandoff {
            from_region: id("from_region")?,
            to_region: id("to_region")?,
        },
        "host_down" => TraceEvent::HostDown {
            host: id("host")?,
            failed_in_flight: id("failed_in_flight")?,
            lost_warm: id("lost_warm")?,
        },
        "host_up" => TraceEvent::HostUp { host: id("host")?, down_ms: num("down_ms")? },
        "invocation_failed" => TraceEvent::InvocationFailed {
            fn_id: id("fn_id")?,
            host: id("host")?,
            attempt: id("attempt")?,
            cause: FaultKind::parse(string("cause")?)
                .ok_or_else(|| err("unknown fault kind".to_string()))?,
        },
        "retry_scheduled" => TraceEvent::RetryScheduled {
            fn_id: id("fn_id")?,
            attempt: id("attempt")?,
            delay_ms: num("delay_ms")?,
        },
        "region_failover" => TraceEvent::RegionFailover {
            fn_id: id("fn_id")?,
            from_region: id("from_region")?,
            to_region: id("to_region")?,
        },
        "drift_suppressed" => TraceEvent::DriftSuppressed { fn_id: id("fn_id")? },
        other => return Err(err(format!("unknown event type `{other}`"))),
    };
    Ok(TraceRecord { at_ms, seq, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        let events = [
            TraceEvent::Dispatch { fn_id: 0, host: 3, memory_mb: 256, cold: true, shadow: false },
            TraceEvent::ColdStart { fn_id: 0, host: 3, memory_mb: 256, init_ms: 141.25 },
            TraceEvent::Eviction { host: 1, evicted: 2 },
            TraceEvent::Throttle { fn_id: 4, cause: ThrottleCause::Function },
            TraceEvent::Resize { fn_id: 0, from_mb: 256, to_mb: 1024, cause: ResizeCause::Recommend },
            TraceEvent::DriftDetected { fn_id: 2 },
            TraceEvent::PhaseTransition {
                fn_id: 2,
                from: LoopPhase::Watching,
                to: LoopPhase::Shadowing,
            },
            TraceEvent::ShadowRoute { fn_id: 2, base_mb: 256 },
            TraceEvent::ArtifactUpdate { updates: 3 },
            TraceEvent::RegionHandoff { from_region: 0, to_region: 1 },
            TraceEvent::HostDown { host: 2, failed_in_flight: 1, lost_warm: 4 },
            TraceEvent::HostUp { host: 2, down_ms: 7_500.25 },
            TraceEvent::InvocationFailed { fn_id: 3, host: 2, attempt: 2, cause: FaultKind::Init },
            TraceEvent::RetryScheduled { fn_id: 3, attempt: 3, delay_ms: 400.5 },
            TraceEvent::RegionFailover { fn_id: 5, from_region: 1, to_region: 0 },
            TraceEvent::DriftSuppressed { fn_id: 3 },
        ];
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord { at_ms: i as f64 * 10.5, seq: i as u64, event })
            .collect()
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let records = sample_records();
        let text = jsonl(&records);
        assert_eq!(text.lines().count(), records.len());
        let parsed = parse_jsonl(&text).expect("exported log must parse");
        assert_eq!(parsed, records);
    }

    #[test]
    fn jsonl_reexport_is_byte_identical() {
        let records = sample_records();
        let text = jsonl(&records);
        let parsed = parse_jsonl(&text).expect("exported log must parse");
        assert_eq!(jsonl(&parsed), text);
    }

    #[test]
    fn parse_reports_line_numbers_and_reasons() {
        let bad_type = "{\"at_ms\":0,\"seq\":0,\"type\":\"warp_drive\"}\n";
        let e = parse_jsonl(bad_type).expect_err("unknown type must fail");
        assert_eq!(e.line, 1);
        assert!(e.message.contains("warp_drive"), "{e}");

        let ok_then_bad =
            "{\"at_ms\":0,\"seq\":0,\"type\":\"drift_detected\",\"fn_id\":1}\nnot json\n";
        let e = parse_jsonl(ok_then_bad).expect_err("garbage line must fail");
        assert_eq!(e.line, 2);

        let missing = "{\"at_ms\":0,\"seq\":0,\"type\":\"eviction\",\"host\":1}\n";
        let e = parse_jsonl(missing).expect_err("missing field must fail");
        assert!(e.message.contains("evicted"), "{e}");
    }

    #[test]
    fn parse_skips_blank_lines() {
        let text = "\n{\"at_ms\":1,\"seq\":0,\"type\":\"drift_detected\",\"fn_id\":7}\n\n";
        let parsed = parse_jsonl(text).expect("blank lines are ignored");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].event, TraceEvent::DriftDetected { fn_id: 7 });
    }

    #[test]
    fn chrome_trace_is_a_json_array_of_instants() {
        let records = sample_records();
        let text = chrome_trace(&records);
        assert!(text.starts_with('['));
        assert!(text.ends_with("]\n"));
        // One line per event plus the closing bracket line.
        let event_lines: Vec<&str> =
            text.lines().filter(|l| l.contains("\"ph\":\"i\"")).collect();
        assert_eq!(event_lines.len(), records.len());
        // Virtual ms are exported as µs.
        assert!(event_lines[1].contains("\"ts\":10500"), "{}", event_lines[1]);
        // Dispatch events lane by function id.
        assert!(event_lines[0].contains("\"tid\":0"), "{}", event_lines[0]);
        // Eviction lanes by host.
        assert!(event_lines[2].contains("\"tid\":1"), "{}", event_lines[2]);
    }
}
