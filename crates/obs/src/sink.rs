//! Trace sinks: where recorded events go.
//!
//! Sinks are statically dispatched — instrumented code is generic over
//! `S: TraceSink`, so the default [`NullSink`] compiles to nothing and an
//! un-traced run pays no branch, no virtual call, and no allocation.

use crate::event::{TraceEvent, TraceRecord};

/// A destination for trace events.
///
/// `record` is called from simulator hot paths, so implementations must be
/// allocation-free per event after construction (the `hot001` contract) and
/// must not consult wall clocks or ambient randomness (`det001`/`det002`):
/// the only inputs are the virtual timestamp and the event payload.
pub trait TraceSink {
    /// Records one event at virtual time `at_ms`.
    fn record(&mut self, at_ms: f64, event: TraceEvent);
}

/// The zero-cost sink: drops every event.
///
/// This is the default sink for every simulator entry point; with it the
/// instrumentation inlines away entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _at_ms: f64, _event: TraceEvent) {}
}

/// A fixed-capacity ring buffer keeping the most recent events.
///
/// All memory is allocated up front in [`RingBufferSink::new`]; recording
/// overwrites the oldest entry once the buffer is full, so arbitrarily long
/// runs can keep a bounded "flight recorder" of their tail.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the oldest record once the buffer has wrapped.
    head: usize,
    /// Total events ever recorded (also the next sequence number).
    recorded: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink { buf: Vec::with_capacity(capacity), capacity, head: 0, recorded: 0 }
    }

    /// The fixed capacity this ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events recorded over the sink's lifetime, including ones that
    /// have since been overwritten.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// How many recorded events were dropped by overwriting.
    pub fn overwritten(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        let (wrapped, linear) = self.buf.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }
}

impl TraceSink for RingBufferSink {
    #[inline]
    fn record(&mut self, at_ms: f64, event: TraceEvent) {
        let rec = TraceRecord { at_ms, seq: self.recorded, event };
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            // Still inside the up-front reservation: never reallocates.
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }
}

/// An unbounded in-memory sink retaining every event, for export.
///
/// Used by `--trace` runs and the determinism tests: collect everything,
/// then serialize with [`MemorySink::to_jsonl`] or
/// [`MemorySink::to_chrome_trace`]. `record` only ever appends (amortized
/// allocation-free), so it is safe on the hot path for bounded runs.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Creates a sink with room for `capacity` records before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink { records: Vec::with_capacity(capacity) }
    }

    /// Every recorded event, in record order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Exports the full log as JSONL (one event object per line).
    pub fn to_jsonl(&self) -> String {
        crate::export::jsonl(&self.records)
    }

    /// Exports the full log in Chrome trace-event format, loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        crate::export::chrome_trace(&self.records)
    }
}

impl TraceSink for MemorySink {
    #[inline]
    fn record(&mut self, at_ms: f64, event: TraceEvent) {
        let seq = self.records.len() as u64;
        self.records.push(TraceRecord { at_ms, seq, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(fn_id: u32) -> TraceEvent {
        TraceEvent::DriftDetected { fn_id }
    }

    #[test]
    fn ring_keeps_everything_until_full() {
        let mut ring = RingBufferSink::new(4);
        for i in 0..3 {
            ring.record(i as f64, ev(i));
        }
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.overwritten(), 0);
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn ring_overwrites_oldest_first() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..7 {
            ring.record(i as f64, ev(i));
        }
        assert_eq!(ring.recorded(), 7);
        assert_eq!(ring.overwritten(), 4);
        let kept: Vec<(u64, f64)> = ring.records().map(|r| (r.seq, r.at_ms)).collect();
        assert_eq!(kept, vec![(4, 4.0), (5, 5.0), (6, 6.0)], "retains the most recent, oldest first");
    }

    #[test]
    fn ring_never_reallocates_after_construction() {
        let mut ring = RingBufferSink::new(8);
        let cap_before = ring.buf.capacity();
        for i in 0..100 {
            ring.record(i as f64, ev(i));
        }
        assert_eq!(ring.buf.capacity(), cap_before);
        assert_eq!(ring.records().count(), 8);
    }

    #[test]
    fn memory_sink_assigns_dense_sequence_numbers() {
        let mut sink = MemorySink::new();
        sink.record(1.0, ev(0));
        sink.record(2.0, ev(1));
        let seqs: Vec<u64> = sink.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert!(!sink.is_empty());
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn null_sink_is_a_unit() {
        let mut sink = NullSink;
        sink.record(0.0, ev(0));
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
    }
}
