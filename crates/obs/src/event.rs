//! The structured trace vocabulary: everything the simulators can say
//! about one run, as plain-data events stamped with virtual time.
//!
//! Events are deliberately `Copy` and carry only primitive fields (ids,
//! megabytes, milliseconds) rather than domain types, so the obs layer sits
//! *below* every domain crate: the engine, fleet, and sizing control plane
//! all record into it without the obs crate knowing any of them.

use std::fmt::Write as _;

/// Why an admitted request was throttled (mirrors the fleet's
/// `ThrottleReason`, kept primitive so obs stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleCause {
    /// The per-function concurrency cap was hit.
    Function,
    /// The account-wide concurrency cap was hit.
    Account,
    /// No host had capacity for the placement.
    Capacity,
}

impl ThrottleCause {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ThrottleCause::Function => "function",
            ThrottleCause::Account => "account",
            ThrottleCause::Capacity => "capacity",
        }
    }

    /// Inverse of [`ThrottleCause::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "function" => Some(ThrottleCause::Function),
            "account" => Some(ThrottleCause::Account),
            "capacity" => Some(ThrottleCause::Capacity),
            _ => None,
        }
    }
}

/// Why a resize directive was applied (mirrors the sizing service's
/// `DirectiveReason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeCause {
    /// First contact at a foreign size: move to base for calibration.
    Calibrate,
    /// A filled measurement window produced a recommendation.
    Recommend,
    /// Drift was confirmed; the function re-measures.
    Drift,
}

impl ResizeCause {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ResizeCause::Calibrate => "calibrate",
            ResizeCause::Recommend => "recommend",
            ResizeCause::Drift => "drift",
        }
    }

    /// Inverse of [`ResizeCause::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "calibrate" => Some(ResizeCause::Calibrate),
            "recommend" => Some(ResizeCause::Recommend),
            "drift" => Some(ResizeCause::Drift),
            _ => None,
        }
    }
}

/// Why an invocation attempt failed (mirrors the fleet's `FailureCause`,
/// kept primitive so obs stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The instance crashed during initialization (cold-start failure).
    Init,
    /// The instance crashed mid-execution.
    Exec,
    /// The invocation exceeded its per-invocation timeout.
    Timeout,
    /// The host serving the invocation crashed.
    HostCrash,
}

impl FaultKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Init => "init",
            FaultKind::Exec => "exec",
            FaultKind::Timeout => "timeout",
            FaultKind::HostCrash => "host_crash",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "init" => Some(FaultKind::Init),
            "exec" => Some(FaultKind::Exec),
            "timeout" => Some(FaultKind::Timeout),
            "host_crash" => Some(FaultKind::HostCrash),
            _ => None,
        }
    }
}

/// A function's position in the sizing loop (mirrors the service's
/// `FnPhase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopPhase {
    /// Collecting a measurement window at the base size.
    Measuring,
    /// Collecting the post-resize drift-reference window.
    Referencing,
    /// Steady state: tumbling drift checks against the reference.
    Watching,
    /// Post-drift shadow re-measurement.
    Shadowing,
}

impl LoopPhase {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LoopPhase::Measuring => "measuring",
            LoopPhase::Referencing => "referencing",
            LoopPhase::Watching => "watching",
            LoopPhase::Shadowing => "shadowing",
        }
    }

    /// Inverse of [`LoopPhase::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "measuring" => Some(LoopPhase::Measuring),
            "referencing" => Some(LoopPhase::Referencing),
            "watching" => Some(LoopPhase::Watching),
            "shadowing" => Some(LoopPhase::Shadowing),
            _ => None,
        }
    }
}

/// One structured event on a run's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An admitted request began executing on a host.
    Dispatch {
        /// Function id.
        fn_id: u32,
        /// Host the invocation was placed on.
        host: u32,
        /// Memory size the invocation runs at, MB.
        memory_mb: u32,
        /// Whether a new instance was provisioned (cold start).
        cold: bool,
        /// Whether this is a shadow invocation at the base size.
        shadow: bool,
    },
    /// A cold start: a fresh instance paid its initialization.
    ColdStart {
        /// Function id.
        fn_id: u32,
        /// Host the instance was provisioned on.
        host: u32,
        /// Memory size of the new instance, MB.
        memory_mb: u32,
        /// Initialization latency, ms.
        init_ms: f64,
    },
    /// Idle warm instances were evicted under memory pressure.
    Eviction {
        /// Host that evicted.
        host: u32,
        /// Number of instances evicted by this placement.
        evicted: u32,
    },
    /// A request was throttled (429).
    Throttle {
        /// Function id.
        fn_id: u32,
        /// Which limit rejected it.
        cause: ThrottleCause,
    },
    /// A sizing directive redeployed a function at a new size.
    Resize {
        /// Function id.
        fn_id: u32,
        /// Size it ran at before, MB.
        from_mb: u32,
        /// Size it runs at from now on, MB.
        to_mb: u32,
        /// Why the directive was issued.
        cause: ResizeCause,
    },
    /// The drift detector confirmed a workload shift.
    DriftDetected {
        /// Function id.
        fn_id: u32,
    },
    /// A function moved between sizing-loop phases.
    PhaseTransition {
        /// Function id.
        fn_id: u32,
        /// Phase it left.
        from: LoopPhase,
        /// Phase it entered.
        to: LoopPhase,
    },
    /// The sizing service routed an invocation to the base size for
    /// shadow re-measurement.
    ShadowRoute {
        /// Function id.
        fn_id: u32,
        /// The base size the invocation runs at, MB.
        base_mb: u32,
    },
    /// The control plane's adaptation policy updated the shared artifact.
    ArtifactUpdate {
        /// Cumulative artifact updates on the plane so far.
        updates: u64,
    },
    /// A merged multi-region driver switched which region it advances.
    RegionHandoff {
        /// Region that ran the previous event.
        from_region: u32,
        /// Region that runs the next event.
        to_region: u32,
    },
    /// A host crashed: all warm generations lost, in-flight invocations
    /// failed, capacity withdrawn until the host rejoins.
    HostDown {
        /// Host that crashed.
        host: u32,
        /// In-flight invocations failed by the crash.
        failed_in_flight: u32,
        /// Idle warm instances destroyed by the crash.
        lost_warm: u32,
    },
    /// A crashed host rejoined the fleet with cold pools.
    HostUp {
        /// Host that rejoined.
        host: u32,
        /// How long the host was down, ms.
        down_ms: f64,
    },
    /// An invocation attempt failed (injected fault, crash, or timeout).
    InvocationFailed {
        /// Function id.
        fn_id: u32,
        /// Host the attempt ran on.
        host: u32,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// What killed the attempt.
        cause: FaultKind,
    },
    /// A failed invocation was re-enqueued by the retry policy.
    RetryScheduled {
        /// Function id.
        fn_id: u32,
        /// 1-based attempt number about to run.
        attempt: u32,
        /// Backoff delay before the retry fires, ms.
        delay_ms: f64,
    },
    /// A multi-region driver rerouted an arrival away from a region in
    /// outage to a healthy one.
    RegionFailover {
        /// Function id of the rerouted arrival.
        fn_id: u32,
        /// Region that was in outage.
        from_region: u32,
        /// Healthy region that absorbed the arrival.
        to_region: u32,
    },
    /// A drift detection was suppressed because it coincided with an
    /// active fault on the function's hosts.
    DriftSuppressed {
        /// Function id.
        fn_id: u32,
    },
}

impl TraceEvent {
    /// Stable machine-readable event type name (the `type` field of the
    /// JSONL schema).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::ColdStart { .. } => "cold_start",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::Throttle { .. } => "throttle",
            TraceEvent::Resize { .. } => "resize",
            TraceEvent::DriftDetected { .. } => "drift_detected",
            TraceEvent::PhaseTransition { .. } => "phase_transition",
            TraceEvent::ShadowRoute { .. } => "shadow_route",
            TraceEvent::ArtifactUpdate { .. } => "artifact_update",
            TraceEvent::RegionHandoff { .. } => "region_handoff",
            TraceEvent::HostDown { .. } => "host_down",
            TraceEvent::HostUp { .. } => "host_up",
            TraceEvent::InvocationFailed { .. } => "invocation_failed",
            TraceEvent::RetryScheduled { .. } => "retry_scheduled",
            TraceEvent::RegionFailover { .. } => "region_failover",
            TraceEvent::DriftSuppressed { .. } => "drift_suppressed",
        }
    }

    /// All event type names, in declaration order — the closed schema CI
    /// validates exported JSONL against.
    pub const KINDS: [&'static str; 16] = [
        "dispatch",
        "cold_start",
        "eviction",
        "throttle",
        "resize",
        "drift_detected",
        "phase_transition",
        "shadow_route",
        "artifact_update",
        "region_handoff",
        "host_down",
        "host_up",
        "invocation_failed",
        "retry_scheduled",
        "region_failover",
        "drift_suppressed",
    ];
}

/// One recorded event: a [`TraceEvent`] plus its virtual timestamp and the
/// sink-assigned sequence number (total order within one sink).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Virtual time the event happened, ms.
    pub at_ms: f64,
    /// Sink-local sequence number, starting at 0.
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Appends this record as one JSONL line (no trailing newline) onto
    /// `out`. Field order is fixed, numbers use Rust's shortest-round-trip
    /// formatting, and no whitespace is emitted — so identical runs export
    /// byte-identical logs.
    pub fn write_jsonl(&self, out: &mut String) {
        // Writing into a String cannot fail; `fmt::Write` only surfaces the
        // formatter contract.
        let _ = write!(out, "{{\"at_ms\":{},\"seq\":{},\"type\":\"{}\"", self.at_ms, self.seq, self.event.kind());
        match self.event {
            TraceEvent::Dispatch { fn_id, host, memory_mb, cold, shadow } => {
                let _ = write!(
                    out,
                    ",\"fn_id\":{fn_id},\"host\":{host},\"memory_mb\":{memory_mb},\"cold\":{cold},\"shadow\":{shadow}"
                );
            }
            TraceEvent::ColdStart { fn_id, host, memory_mb, init_ms } => {
                let _ = write!(
                    out,
                    ",\"fn_id\":{fn_id},\"host\":{host},\"memory_mb\":{memory_mb},\"init_ms\":{init_ms}"
                );
            }
            TraceEvent::Eviction { host, evicted } => {
                let _ = write!(out, ",\"host\":{host},\"evicted\":{evicted}");
            }
            TraceEvent::Throttle { fn_id, cause } => {
                let _ = write!(out, ",\"fn_id\":{fn_id},\"cause\":\"{}\"", cause.name());
            }
            TraceEvent::Resize { fn_id, from_mb, to_mb, cause } => {
                let _ = write!(
                    out,
                    ",\"fn_id\":{fn_id},\"from_mb\":{from_mb},\"to_mb\":{to_mb},\"cause\":\"{}\"",
                    cause.name()
                );
            }
            TraceEvent::DriftDetected { fn_id } => {
                let _ = write!(out, ",\"fn_id\":{fn_id}");
            }
            TraceEvent::PhaseTransition { fn_id, from, to } => {
                let _ = write!(
                    out,
                    ",\"fn_id\":{fn_id},\"from\":\"{}\",\"to\":\"{}\"",
                    from.name(),
                    to.name()
                );
            }
            TraceEvent::ShadowRoute { fn_id, base_mb } => {
                let _ = write!(out, ",\"fn_id\":{fn_id},\"base_mb\":{base_mb}");
            }
            TraceEvent::ArtifactUpdate { updates } => {
                let _ = write!(out, ",\"updates\":{updates}");
            }
            TraceEvent::RegionHandoff { from_region, to_region } => {
                let _ = write!(out, ",\"from_region\":{from_region},\"to_region\":{to_region}");
            }
            TraceEvent::HostDown { host, failed_in_flight, lost_warm } => {
                let _ = write!(
                    out,
                    ",\"host\":{host},\"failed_in_flight\":{failed_in_flight},\"lost_warm\":{lost_warm}"
                );
            }
            TraceEvent::HostUp { host, down_ms } => {
                let _ = write!(out, ",\"host\":{host},\"down_ms\":{down_ms}");
            }
            TraceEvent::InvocationFailed { fn_id, host, attempt, cause } => {
                let _ = write!(
                    out,
                    ",\"fn_id\":{fn_id},\"host\":{host},\"attempt\":{attempt},\"cause\":\"{}\"",
                    cause.name()
                );
            }
            TraceEvent::RetryScheduled { fn_id, attempt, delay_ms } => {
                let _ = write!(out, ",\"fn_id\":{fn_id},\"attempt\":{attempt},\"delay_ms\":{delay_ms}");
            }
            TraceEvent::RegionFailover { fn_id, from_region, to_region } => {
                let _ = write!(
                    out,
                    ",\"fn_id\":{fn_id},\"from_region\":{from_region},\"to_region\":{to_region}"
                );
            }
            TraceEvent::DriftSuppressed { fn_id } => {
                let _ = write!(out, ",\"fn_id\":{fn_id}");
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_variant() {
        let samples = [
            TraceEvent::Dispatch { fn_id: 0, host: 1, memory_mb: 256, cold: true, shadow: false },
            TraceEvent::ColdStart { fn_id: 0, host: 1, memory_mb: 256, init_ms: 120.5 },
            TraceEvent::Eviction { host: 2, evicted: 3 },
            TraceEvent::Throttle { fn_id: 4, cause: ThrottleCause::Account },
            TraceEvent::Resize { fn_id: 0, from_mb: 256, to_mb: 512, cause: ResizeCause::Recommend },
            TraceEvent::DriftDetected { fn_id: 1 },
            TraceEvent::PhaseTransition { fn_id: 1, from: LoopPhase::Watching, to: LoopPhase::Measuring },
            TraceEvent::ShadowRoute { fn_id: 2, base_mb: 256 },
            TraceEvent::ArtifactUpdate { updates: 7 },
            TraceEvent::RegionHandoff { from_region: 0, to_region: 1 },
            TraceEvent::HostDown { host: 3, failed_in_flight: 2, lost_warm: 5 },
            TraceEvent::HostUp { host: 3, down_ms: 5_000.0 },
            TraceEvent::InvocationFailed { fn_id: 1, host: 3, attempt: 1, cause: FaultKind::Exec },
            TraceEvent::RetryScheduled { fn_id: 1, attempt: 2, delay_ms: 250.0 },
            TraceEvent::RegionFailover { fn_id: 4, from_region: 0, to_region: 1 },
            TraceEvent::DriftSuppressed { fn_id: 1 },
        ];
        let mut kinds: Vec<&str> = samples.iter().map(TraceEvent::kind).collect();
        kinds.sort_unstable();
        let mut expected = TraceEvent::KINDS.to_vec();
        expected.sort_unstable();
        assert_eq!(kinds, expected);
    }

    #[test]
    fn enum_names_round_trip() {
        for c in [ThrottleCause::Function, ThrottleCause::Account, ThrottleCause::Capacity] {
            assert_eq!(ThrottleCause::parse(c.name()), Some(c));
        }
        for c in [ResizeCause::Calibrate, ResizeCause::Recommend, ResizeCause::Drift] {
            assert_eq!(ResizeCause::parse(c.name()), Some(c));
        }
        for p in [
            LoopPhase::Measuring,
            LoopPhase::Referencing,
            LoopPhase::Watching,
            LoopPhase::Shadowing,
        ] {
            assert_eq!(LoopPhase::parse(p.name()), Some(p));
        }
        for f in [FaultKind::Init, FaultKind::Exec, FaultKind::Timeout, FaultKind::HostCrash] {
            assert_eq!(FaultKind::parse(f.name()), Some(f));
        }
        assert_eq!(ThrottleCause::parse("nope"), None);
        assert_eq!(ResizeCause::parse(""), None);
        assert_eq!(LoopPhase::parse("Watching"), None, "names are lowercase");
        assert_eq!(FaultKind::parse("HostCrash"), None, "names are snake_case");
    }

    #[test]
    fn jsonl_line_has_fixed_field_order() {
        let rec = TraceRecord {
            at_ms: 12.5,
            seq: 3,
            event: TraceEvent::Dispatch { fn_id: 1, host: 0, memory_mb: 256, cold: false, shadow: true },
        };
        let mut line = String::new();
        rec.write_jsonl(&mut line);
        assert_eq!(
            line,
            "{\"at_ms\":12.5,\"seq\":3,\"type\":\"dispatch\",\"fn_id\":1,\"host\":0,\"memory_mb\":256,\"cold\":false,\"shadow\":true}"
        );

        let rec = TraceRecord {
            at_ms: 20.0,
            seq: 4,
            event: TraceEvent::InvocationFailed {
                fn_id: 2,
                host: 1,
                attempt: 1,
                cause: FaultKind::HostCrash,
            },
        };
        let mut line = String::new();
        rec.write_jsonl(&mut line);
        assert_eq!(
            line,
            "{\"at_ms\":20,\"seq\":4,\"type\":\"invocation_failed\",\"fn_id\":2,\"host\":1,\"attempt\":1,\"cause\":\"host_crash\"}"
        );
    }
}
