//! Deterministic metrics: log-scale histograms and monotone counters.
//!
//! Everything here is driven by virtual time and explicit observations —
//! no wall clock, no ambient randomness — so snapshots from identical runs
//! are byte-identical. Bucketing is derived directly from the IEEE-754 bit
//! pattern (exponent plus the top mantissa bits), which is exact on every
//! platform and needs no `ln`/`log2` calls.

use std::fmt::Write as _;

/// Number of mantissa bits used to subdivide each power of two.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power of two (`2^SUB_BITS`).
const SUBS: usize = 1 << SUB_BITS;
/// Smallest tracked binary exponent: values below `2^MIN_EXP` (~1e-6) land
/// in the underflow bucket.
const MIN_EXP: i32 = -20;
/// Largest tracked binary exponent: values at or above `2^(MAX_EXP+1)`
/// (~2e9) land in the overflow bucket.
const MAX_EXP: i32 = 30;
/// Total bucket count: underflow bucket 0, then `SUBS` sub-buckets per
/// exponent in `[MIN_EXP, MAX_EXP]`; the final bucket doubles as overflow.
const BUCKETS: usize = 1 + (MAX_EXP - MIN_EXP + 1) as usize * SUBS;

/// A fixed-bucket log-scale histogram with ~9% relative bucket width.
///
/// Buckets are fixed at construction and never reallocate, so
/// [`LogHistogram::observe`] is allocation-free (`hot001`-safe). Merging two
/// histograms is exact for counts and extrema: every bucket boundary is
/// identical across instances.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Maps a value to its bucket index. Non-positive and NaN values land
    /// in bucket 0; values beyond the tracked range clamp to the edge
    /// buckets.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= 0.0 {
            return 0;
        }
        if value == f64::INFINITY {
            return BUCKETS - 1;
        }
        let bits = value.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            // Subnormals also take this branch (their biased exponent is 0).
            return 1;
        }
        if exp > MAX_EXP {
            return BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        1 + (exp - MIN_EXP) as usize * SUBS + sub
    }

    /// The inclusive lower bound of bucket `index` (0.0 for the underflow
    /// bucket).
    pub fn bucket_lower(index: usize) -> f64 {
        assert!(index < BUCKETS, "bucket index out of range");
        if index == 0 {
            return 0.0;
        }
        let exp = MIN_EXP + ((index - 1) / SUBS) as i32;
        let sub = ((index - 1) % SUBS) as u64;
        f64::from_bits((((exp + 1023) as u64) << 52) | (sub << (52 - SUB_BITS)))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: f64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Bucket counts, totals, and
    /// extrema merge exactly; `sum` merges up to float addition order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }

    /// Smallest observed value (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed value (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Raw bucket counts (length [`LogHistogram::bucket_len`]).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Number of buckets.
    pub fn bucket_len() -> usize {
        BUCKETS
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`): walks the cumulative
    /// bucket counts and reports the matched bucket's upper bound, clamped
    /// into the observed `[min, max]`. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i + 1 < BUCKETS {
                    LogHistogram::bucket_lower(i + 1)
                } else {
                    self.max
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Handle to a registered counter (index into the registry, O(1) updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named monotone counters and log-scale histograms.
///
/// Register every series up front (allocates once), then update through the
/// returned handles from hot paths without further allocation. Snapshots
/// serialize in registration order, so identical runs produce byte-identical
/// JSON.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, LogHistogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter named `name` and returns its handle.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a histogram named `name` and returns its handle.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| *n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name, LogHistogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Current value of the counter named `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram_ref(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Serializes the registry to JSON at virtual time `at_ms`.
    ///
    /// Counters appear in registration order; each histogram reports count,
    /// sum, min/max, p50/p90/p99, and its non-empty buckets as
    /// `[lower_bound, count]` pairs.
    pub fn snapshot_json(&self, at_ms: f64) -> String {
        let mut out = String::with_capacity(256 + self.histograms.len() * 256);
        let _ = write!(out, "{{\"at_ms\":{at_ms},\"counters\":{{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                hist.count(),
                hist.sum(),
                if hist.count() == 0 { 0.0 } else { hist.min() },
                if hist.count() == 0 { 0.0 } else { hist.max() },
                hist.quantile(0.5),
                hist.quantile(0.9),
                hist.quantile(0.99),
            );
            let mut first = true;
            for (b, c) in hist.buckets().iter().enumerate() {
                if *c > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{},{c}]", LogHistogram::bucket_lower(b));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_lower_is_a_fixed_point_of_bucket_index() {
        for i in 0..BUCKETS {
            let lower = LogHistogram::bucket_lower(i);
            assert_eq!(
                LogHistogram::bucket_index(lower),
                i,
                "bucket {i} lower bound {lower} must map back to itself"
            );
        }
    }

    #[test]
    fn bucket_boundaries_are_strictly_increasing() {
        for i in 1..BUCKETS {
            assert!(
                LogHistogram::bucket_lower(i) > LogHistogram::bucket_lower(i - 1),
                "bucket {i} must start above bucket {}",
                i - 1
            );
        }
    }

    #[test]
    fn edge_values_land_in_edge_buckets() {
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-1.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(LogHistogram::bucket_index(f64::MIN_POSITIVE / 2.0), 1, "subnormal underflow");
        assert_eq!(LogHistogram::bucket_index(1e-30), 1, "underflow clamps to first real bucket");
        assert_eq!(LogHistogram::bucket_index(1e300), BUCKETS - 1, "overflow clamps to last");
        assert_eq!(LogHistogram::bucket_index(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn nearby_values_share_a_bucket_distant_values_do_not() {
        // ~9% relative width: the bucket holding 100 spans [96, 104).
        assert_eq!(LogHistogram::bucket_index(100.0), LogHistogram::bucket_index(103.0));
        assert_ne!(LogHistogram::bucket_index(100.0), LogHistogram::bucket_index(104.0));
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((400.0..=600.0).contains(&p50), "p50 {p50} should be near 500");
        assert!((900.0..=1000.0).contains(&p99), "p99 {p99} should be near 990");
        assert!(h.quantile(0.0) >= h.min() && h.quantile(1.0) <= h.max());
        assert_eq!(h.mean(), 500.5);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_dedupes_names_and_updates_by_handle() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("dispatches");
        let b = reg.counter("dispatches");
        assert_eq!(a, b);
        reg.inc(a);
        reg.add(b, 4);
        assert_eq!(reg.counter_value("dispatches"), Some(5));
        assert_eq!(reg.counter_value("missing"), None);

        let h = reg.histogram("latency_ms");
        reg.observe(h, 12.0);
        reg.observe(h, 14.0);
        let hist = reg.histogram_ref("latency_ms").expect("registered");
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn snapshot_json_is_stable_and_parseable() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("cold_starts");
        let h = reg.histogram("latency_ms");
        reg.add(c, 3);
        for v in [10.0, 20.0, 40.0] {
            reg.observe(h, v);
        }
        let snap = reg.snapshot_json(1234.5);
        assert_eq!(snap, reg.snapshot_json(1234.5), "snapshots are deterministic");
        assert!(snap.starts_with("{\"at_ms\":1234.5,\"counters\":{\"cold_starts\":3}"), "{snap}");
        assert!(snap.contains("\"count\":3"), "{snap}");
        assert!(snap.contains("\"sum\":70"), "{snap}");
        // Three distinct buckets for 10/20/40 (each in its own power of two).
        assert_eq!(snap.matches(",1]").count(), 3, "{snap}");
    }
}
