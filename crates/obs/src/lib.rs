//! Deterministic tracing and metrics for the sizeless simulators.
//!
//! Simulated-fleet runs were previously black boxes: one final report, no
//! record of what happened along the way. This crate adds the wrapper-style
//! observability the paper itself relies on (Section 3.2's resource-monitor
//! wrappers), rebuilt for a discrete-event world:
//!
//! - [`TraceEvent`]/[`TraceRecord`]: a closed vocabulary of structured
//!   events (dispatch, cold start, eviction, throttle, resize, drift,
//!   phase transition, shadow route, artifact update, region handoff)
//!   stamped with *virtual* time — never the wall clock, so traces are
//!   `det001`-clean and byte-identical across repeated seeds and thread
//!   counts.
//! - [`TraceSink`]: statically dispatched sinks. [`NullSink`] compiles the
//!   instrumentation away entirely (the default everywhere);
//!   [`RingBufferSink`] is a pre-sized, allocation-free flight recorder;
//!   [`MemorySink`] retains everything for export.
//! - [`export`]: JSONL (one self-describing object per line) and Chrome
//!   trace-event JSON, loadable in `chrome://tracing` or
//!   <https://ui.perfetto.dev>, plus a parser for round-trip analysis.
//! - [`LogHistogram`]/[`MetricsRegistry`]: deterministic fixed-bucket
//!   log-scale histograms and monotone counters, snapshottable to JSON at
//!   any virtual time.
//!
//! The crate is dependency-free by design: it sits *below* the engine,
//! fleet, and sizing control plane, which all record into it.

pub mod event;
pub mod export;
pub mod metrics;
pub mod sink;

pub use event::{FaultKind, LoopPhase, ResizeCause, ThrottleCause, TraceEvent, TraceRecord};
pub use metrics::{CounterId, HistogramId, LogHistogram, MetricsRegistry};
pub use sink::{MemorySink, NullSink, RingBufferSink, TraceSink};
