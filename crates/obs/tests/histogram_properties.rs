//! Property tests for the log-scale histogram: merging two histograms must
//! be indistinguishable (up to float addition order in the running sum)
//! from ingesting the union of their observations into one histogram.

use proptest::prelude::*;
use sizeless_obs::LogHistogram;

fn values() -> impl Strategy<Value = Vec<f64>> {
    // A mantissa in [0.1, 10) spread across nine decades: latencies and
    // memory totals in plausible simulator ranges, awkward magnitudes on
    // both ends.
    proptest::collection::vec(
        (0.1..10.0f64, 0i32..9).prop_map(|(m, e)| m * 10f64.powi(e - 3)),
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_equals_ingesting_the_union(a in values(), b in values()) {
        let mut ha = LogHistogram::new();
        for v in &a {
            ha.observe(*v);
        }
        let mut hb = LogHistogram::new();
        for v in &b {
            hb.observe(*v);
        }
        let mut union = LogHistogram::new();
        for v in a.iter().chain(b.iter()) {
            union.observe(*v);
        }

        ha.merge(&hb);

        // Counts, extrema, and every bucket merge exactly.
        prop_assert_eq!(ha.count(), union.count());
        prop_assert_eq!(ha.buckets(), union.buckets());
        if ha.count() > 0 {
            prop_assert_eq!(ha.min(), union.min());
            prop_assert_eq!(ha.max(), union.max());
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(ha.quantile(q), union.quantile(q));
            }
        }
        // The running sum merges up to float addition order: merge computes
        // (Σa) + (Σb) while the union interleaves, so allow relative slack.
        let scale = union.sum().abs().max(1.0);
        prop_assert!((ha.sum() - union.sum()).abs() <= scale * 1e-12);
    }

    #[test]
    fn every_positive_value_lands_in_a_self_consistent_bucket(v in 1e-9..1e12f64) {
        let idx = LogHistogram::bucket_index(v);
        prop_assert!(idx > 0, "positive values never land in the underflow bucket");
        prop_assert!(idx < LogHistogram::bucket_len());
        // The bucket's lower bound is at or below the value...
        prop_assert!(LogHistogram::bucket_lower(idx) <= v);
        // ...and the next bucket (if any) starts above it.
        if idx + 1 < LogHistogram::bucket_len() {
            prop_assert!(LogHistogram::bucket_lower(idx + 1) > v);
        }
    }
}
