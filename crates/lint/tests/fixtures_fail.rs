//! The ISSUE's acceptance scenario, pinned as a test: reintroducing
//! `Instant::now()` into `crates/engine` must fail the lint sweep. The
//! offending source lives on disk in `tests/fixtures/` (excluded from the
//! real sweep) and is linted here under a virtual `crates/engine/src/`
//! path with the checked-in `lint.toml` — the exact configuration CI runs.

use sizeless_lint::config::Config;
use sizeless_lint::scan::lint_source;
use std::fs;
use std::path::Path;

fn real_config() -> Config {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = fs::read_to_string(root.join("lint.toml")).expect("checked-in lint.toml");
    Config::parse(&text).expect("lint.toml parses")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(path).expect("fixture exists")
}

#[test]
fn reintroducing_instant_into_engine_fails_the_sweep() {
    let src = fixture("engine_instant.rs");
    let report = lint_source("crates/engine/src/wallclock.rs", &src, &real_config());
    let det001: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "det001")
        .collect();
    assert!(
        !det001.is_empty(),
        "Instant in crates/engine must produce det001 findings"
    );
    // Spans point at the actual `Instant` tokens, not the whole file.
    assert!(det001.iter().all(|f| f.line > 0 && f.col > 0));
    assert!(det001.iter().any(|f| f.message.contains("SimTime")));
}

#[test]
fn the_same_code_in_a_non_sim_crate_passes() {
    // det001 is a *simulation* contract: the identical source under a
    // crate that never feeds the simulator is accepted.
    let src = fixture("engine_instant.rs");
    let report = lint_source("crates/lint/src/wallclock.rs", &src, &real_config());
    assert!(
        report.findings.iter().all(|f| f.rule != "det001"),
        "det001 must be scoped to [determinism] crates"
    );
}

#[test]
fn clean_engine_fixture_passes_the_sweep() {
    let src = fixture("engine_clean.rs");
    let report = lint_source("crates/engine/src/clock.rs", &src, &real_config());
    assert!(
        report.findings.is_empty(),
        "clean fixture must produce no findings, got {:?}",
        report
            .findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect::<Vec<_>>()
    );
}
