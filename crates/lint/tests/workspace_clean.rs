//! `cargo test` enforces the lint contract even without the CI job: the
//! real sweep over the real workspace with the checked-in `lint.toml`
//! must come back clean, and every silenced site must carry a reason.

use sizeless_lint::config::Config;
use sizeless_lint::{lint_workspace, validate_config};
use std::fs;
use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = fs::read_to_string(root.join("lint.toml")).expect("checked-in lint.toml");
    let config = Config::parse(&text).expect("lint.toml parses");
    validate_config(&config).expect("every [[allow]] names a known rule");

    let report = lint_workspace(&root, &config).expect("sweep succeeds");
    assert!(report.files > 100, "sweep must cover the whole workspace");
    assert!(
        report.lex_errors.is_empty(),
        "lexer must handle every first-party source: {:?}",
        report.lex_errors
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}:{} {}", f.path, f.line, f.col, f.rule))
        .collect();
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.suppressed > 0,
        "the triaged suppressions must actually be exercised"
    );
}
