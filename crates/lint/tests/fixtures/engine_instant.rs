//! Violation fixture: what `crates/engine` would look like if someone
//! reintroduced wall-clock time into the simulation core. Linted by
//! `tests/fixtures_fail.rs` under a virtual `crates/engine/src/` path;
//! excluded from the real sweep via `[paths] exclude` in `lint.toml`.

use std::time::Instant;

/// A "simulation clock" that secretly reads the host's wall clock —
/// exactly the bug class det001 exists to catch.
pub struct WallClock {
    started: Instant,
}

impl WallClock {
    /// Starts the clock at the real current time.
    pub fn start() -> Self {
        WallClock {
            started: Instant::now(),
        }
    }

    /// Milliseconds of *wall* time since start — nondeterministic.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }
}
