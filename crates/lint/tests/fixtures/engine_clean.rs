//! Clean fixture: the same shape as `engine_instant.rs` but reading
//! virtual time, hash-free and panic-free — the sweep must accept it.

/// A simulation clock driven by the event queue, not the host.
pub struct SimClock {
    now_ms: f64,
}

impl SimClock {
    /// Starts at virtual time zero.
    pub fn start() -> Self {
        SimClock { now_ms: 0.0 }
    }

    /// Advances to `t_ms` if it is later.
    pub fn advance_to(&mut self, t_ms: f64) {
        if t_ms > self.now_ms {
            self.now_ms = t_ms;
        }
    }

    /// Current virtual time, ms.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }
}
