//! Per-rule positive/negative coverage for the scanner, plus suppression
//! and allowlist behavior. Sources are inline so each case documents
//! exactly what triggers (or must not trigger) a rule; on-disk violation
//! fixtures live in `tests/fixtures/` and are covered by
//! `fixtures_fail.rs`.

use sizeless_lint::config::{AllowEntry, Config};
use sizeless_lint::scan::{lint_source, FileReport};

/// A config with `engine` and `fleet` as simulation crates and one hot
/// function, mirroring the shape of the real `lint.toml`.
fn cfg() -> Config {
    Config {
        sim_crates: vec!["engine".into(), "fleet".into()],
        hot_modules: vec!["engine::queue".into()],
        hot_functions: vec!["Matrix::matmul_into".into()],
        ..Config::default()
    }
}

fn rules_of(report: &FileReport) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[track_caller]
fn expect_rule(path: &str, src: &str, rule: &str) {
    let report = lint_source(path, src, &cfg());
    assert!(
        report.findings.iter().any(|f| f.rule == rule),
        "expected {rule} in {path}, got {:?}",
        rules_of(&report)
    );
}

#[track_caller]
fn expect_clean(path: &str, src: &str) {
    let report = lint_source(path, src, &cfg());
    assert!(
        report.findings.is_empty(),
        "expected no findings in {path}, got {:?}",
        rules_of(&report)
    );
}

// ---- det001: wall-clock time in simulation crates --------------------

#[test]
fn det001_instant_in_sim_crate_lib() {
    expect_rule(
        "crates/engine/src/clock.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }",
        "det001",
    );
}

#[test]
fn det001_systemtime_in_sim_crate_lib() {
    expect_rule(
        "crates/fleet/src/x.rs",
        "use std::time::SystemTime;",
        "det001",
    );
}

#[test]
fn det001_not_in_non_sim_crate() {
    expect_clean(
        "crates/stats/src/x.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }",
    );
}

#[test]
fn det001_not_in_integration_tests() {
    expect_clean(
        "crates/engine/tests/wallclock.rs",
        "fn t() { let _ = std::time::Instant::now(); }",
    );
}

#[test]
fn det001_not_in_cfg_test_module() {
    expect_clean(
        "crates/engine/src/clock.rs",
        r#"
pub fn ok() {}

#[cfg(test)]
mod tests {
    #[test]
    fn timing() { let _ = std::time::Instant::now(); }
}
"#,
    );
}

// ---- det002: ambient RNG ---------------------------------------------

#[test]
fn det002_thread_rng_in_any_lib() {
    expect_rule(
        "crates/stats/src/x.rs",
        "pub fn r() -> f64 { rand::thread_rng().gen() }",
        "det002",
    );
}

#[test]
fn det002_rand_random_path() {
    expect_rule(
        "crates/neural/src/x.rs",
        "pub fn r() -> f64 { rand::random() }",
        "det002",
    );
}

#[test]
fn det002_bare_random_method_is_fine() {
    // `self.random()` is someone's own method, not `rand::random()`.
    expect_clean(
        "crates/neural/src/x.rs",
        "pub fn r(&self) -> f64 { self.random() }",
    );
}

// ---- det003: ad-hoc threading ----------------------------------------

#[test]
fn det003_thread_spawn() {
    expect_rule(
        "crates/stats/src/x.rs",
        "pub fn go() { std::thread::spawn(|| {}); }",
        "det003",
    );
}

#[test]
fn det003_thread_scope() {
    expect_rule(
        "crates/neural/src/x.rs",
        "pub fn go() { std::thread::scope(|s| {}); }",
        "det003",
    );
}

#[test]
fn det003_unrelated_spawn_is_fine() {
    expect_clean(
        "crates/neural/src/x.rs",
        "pub fn go(pool: &Pool) { pool.spawn(|| {}); }",
    );
}

#[test]
fn det003_allowed_by_module_entry() {
    let mut config = cfg();
    config.allows.push(AllowEntry {
        rule: "det003".into(),
        module: Some("neural::parallel".into()),
        krate: None,
        reason: "deterministic scoped fan-out".into(),
    });
    let report = lint_source(
        "crates/neural/src/parallel.rs",
        "pub fn go() { std::thread::scope(|s| {}); }",
        &config,
    );
    assert!(report.findings.is_empty(), "{:?}", rules_of(&report));
    assert_eq!(report.suppressed, 1);
}

// ---- det004: hash collections in simulation crates -------------------

#[test]
fn det004_hashmap_in_sim_crate() {
    expect_rule(
        "crates/fleet/src/x.rs",
        "use std::collections::HashMap;",
        "det004",
    );
}

#[test]
fn det004_btreemap_is_fine() {
    expect_clean(
        "crates/fleet/src/x.rs",
        "use std::collections::BTreeMap;",
    );
}

#[test]
fn det004_hashmap_outside_sim_crates_is_fine() {
    expect_clean(
        "crates/neural/src/x.rs",
        "use std::collections::HashMap;",
    );
}

// ---- hot001: allocation in hot paths ---------------------------------

#[test]
fn hot001_clone_in_hot_function() {
    expect_rule(
        "crates/neural/src/matrix.rs",
        r#"
impl Matrix {
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        let copy = other.clone();
    }
}
"#,
        "hot001",
    );
}

#[test]
fn hot001_vec_macro_in_hot_module() {
    expect_rule(
        "crates/engine/src/queue.rs",
        "pub fn push(&mut self) { let v = vec![1, 2]; }",
        "hot001",
    );
}

#[test]
fn hot001_clone_outside_hot_paths_is_fine() {
    expect_clean(
        "crates/neural/src/matrix.rs",
        r#"
impl Matrix {
    pub fn to_owned_rows(&self) -> Vec<f64> { self.data.clone() }
}
"#,
    );
}

#[test]
fn hot001_same_method_name_on_other_type_is_fine() {
    // `Other::matmul_into` is not the configured `Matrix::matmul_into`.
    expect_clean(
        "crates/neural/src/other.rs",
        r#"
impl Other {
    pub fn matmul_into(&self) { let v = self.data.clone(); }
}
"#,
    );
}

// ---- panic001/panic002/panic003: panic safety ------------------------

#[test]
fn panic001_unwrap_in_lib() {
    expect_rule(
        "crates/core/src/x.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }",
        "panic001",
    );
}

#[test]
fn panic002_expect_in_lib() {
    expect_rule(
        "crates/core/src/x.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.expect(\"present\") }",
        "panic002",
    );
}

#[test]
fn panic003_literal_index_in_lib() {
    expect_rule(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32]) -> u32 { v[0] }",
        "panic003",
    );
}

#[test]
fn panic_rules_skip_cfg_test_modules() {
    expect_clean(
        "crates/core/src/x.rs",
        r#"
pub fn ok() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
"#,
    );
}

#[test]
fn panic_rules_skip_integration_tests() {
    expect_clean(
        "crates/core/tests/api.rs",
        "fn f(v: &[u32]) -> u32 { v[0] + Some(1).unwrap() }",
    );
}

#[test]
fn panic003_variable_index_is_fine() {
    expect_clean(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32], i: usize) -> u32 { v[i] }",
    );
}

// ---- float001: NaN-panicking comparisons -----------------------------

#[test]
fn float001_partial_cmp_unwrap() {
    expect_rule(
        "crates/stats/src/x.rs",
        "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        "float001",
    );
}

#[test]
fn float001_partial_cmp_expect() {
    expect_rule(
        "crates/stats/src/x.rs",
        "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\")); }",
        "float001",
    );
}

#[test]
fn float001_applies_even_in_tests() {
    // Float ordering must be total everywhere, including test code.
    expect_rule(
        "crates/stats/tests/order.rs",
        "fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        "float001",
    );
}

#[test]
fn float001_total_cmp_is_the_fix() {
    expect_clean(
        "crates/stats/src/x.rs",
        "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }",
    );
}

// ---- suppression behavior --------------------------------------------

#[test]
fn trailing_suppression_silences_its_line() {
    let report = lint_source(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32]) -> u32 { v[0] } // lint: allow(panic003) reason=\"asserted above\"\n",
        &cfg(),
    );
    assert!(report.findings.is_empty(), "{:?}", rules_of(&report));
    assert_eq!(report.suppressed, 1);
}

#[test]
fn own_line_suppression_covers_the_next_line() {
    let report = lint_source(
        "crates/core/src/x.rs",
        r#"
pub fn f(v: &[u32]) -> u32 {
    // lint: allow(panic003) reason="caller proves length"
    v[0]
}
"#,
        &cfg(),
    );
    assert!(report.findings.is_empty(), "{:?}", rules_of(&report));
    assert_eq!(report.suppressed, 1);
}

#[test]
fn suppression_does_not_leak_past_its_line() {
    let report = lint_source(
        "crates/core/src/x.rs",
        r#"
pub fn f(v: &[u32]) -> u32 {
    // lint: allow(panic003) reason="first only"
    let a = v[0];
    let b = v[1];
    a + b
}
"#,
        &cfg(),
    );
    assert_eq!(rules_of(&report), vec!["panic003"], "second index still fires");
    assert_eq!(report.suppressed, 1);
}

#[test]
fn reasonless_suppression_is_lint001_and_does_not_suppress() {
    let report = lint_source(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32]) -> u32 { v[0] } // lint: allow(panic003)\n",
        &cfg(),
    );
    let mut rules = rules_of(&report);
    rules.sort_unstable();
    assert_eq!(rules, vec!["lint001", "panic003"]);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn unused_suppression_is_lint002() {
    let report = lint_source(
        "crates/core/src/x.rs",
        "pub fn f() {} // lint: allow(panic003) reason=\"nothing here\"\n",
        &cfg(),
    );
    assert_eq!(rules_of(&report), vec!["lint002"]);
}

#[test]
fn unknown_rule_in_suppression_is_lint003() {
    let report = lint_source(
        "crates/core/src/x.rs",
        "pub fn f() {} // lint: allow(bogus042) reason=\"typo\"\n",
        &cfg(),
    );
    assert_eq!(rules_of(&report), vec!["lint003"]);
}

#[test]
fn suppression_only_covers_listed_rules() {
    let report = lint_source(
        "crates/core/src/x.rs",
        "pub fn f(v: &[u32]) -> u32 { v[0] + Some(1).unwrap() } \
         // lint: allow(panic003) reason=\"length proven\"\n",
        &cfg(),
    );
    assert_eq!(rules_of(&report), vec!["panic001"], "unwrap still fires");
    assert_eq!(report.suppressed, 1);
}

// ---- crate-scoped allowlist ------------------------------------------

#[test]
fn crate_scoped_allow_covers_whole_crate() {
    let mut config = cfg();
    config.allows.push(AllowEntry {
        rule: "panic002".into(),
        module: None,
        krate: Some("bench".into()),
        reason: "experiment binaries may assert".into(),
    });
    let report = lint_source(
        "crates/bench/src/bin/fig2.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.expect(\"cli arg\") }",
        &config,
    );
    assert!(report.findings.is_empty(), "{:?}", rules_of(&report));
    assert_eq!(report.suppressed, 1);
}

#[test]
fn crate_scoped_allow_does_not_cover_other_crates() {
    let mut config = cfg();
    config.allows.push(AllowEntry {
        rule: "panic002".into(),
        module: None,
        krate: Some("bench".into()),
        reason: "experiment binaries may assert".into(),
    });
    let report = lint_source(
        "crates/core/src/x.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.expect(\"nope\") }",
        &config,
    );
    assert_eq!(rules_of(&report), vec!["panic002"]);
}
