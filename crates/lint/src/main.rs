//! CLI entry point: `cargo run -p sizeless_lint -- check`.
//!
//! Subcommands:
//!
//! - `check [--root DIR] [--config FILE]` — sweep the workspace and exit
//!   nonzero on any unsuppressed finding (the CI gate);
//! - `rules` — print the rule registry.
//!
//! `--root` defaults to the workspace root (found by walking up from the
//! current directory to the first `lint.toml`), so the binary works both
//! from `cargo run` at the root and from a crate subdirectory.

use sizeless_lint::{config::Config, lint_workspace, report, validate_config};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: sizeless_lint check [--root DIR] [--config FILE]\n       sizeless_lint rules";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            print!("{}", report::render_rules());
            ExitCode::SUCCESS
        }
        Some("check") => run_check(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "--config" => config_path = it.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("sizeless-lint: no lint.toml found between here and /; pass --root");
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sizeless-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sizeless-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = validate_config(&config) {
        eprintln!("sizeless-lint: {e}");
        return ExitCode::from(2);
    }
    match lint_workspace(&root, &config) {
        Ok(ws) => {
            let (text, failed) = report::render(&ws);
            print!("{text}");
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("sizeless-lint: sweep failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
