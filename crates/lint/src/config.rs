//! `lint.toml` parsing.
//!
//! The workspace has no offline `toml` crate, so this module parses the small
//! TOML subset the lint config actually uses: `[table]` headers, `[[allow]]`
//! array-of-tables headers, `key = "string"`, and `key = ["array", "of",
//! "strings"]`, with `#` comments. Anything else is a hard error — the config
//! is checked in, so failing loudly beats guessing.

use std::collections::BTreeMap;
use std::fmt;

/// A module- or crate-scoped exemption recorded in `lint.toml`.
///
/// Every entry must carry a `reason`; the linter refuses a reasonless allow
/// the same way it refuses a reasonless inline suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier this entry exempts (e.g. `"det003"`).
    pub rule: String,
    /// Module path prefix the exemption covers (e.g. `"workload::parallel"`).
    pub module: Option<String>,
    /// Crate short name the exemption covers (e.g. `"bench"`).
    pub krate: Option<String>,
    /// Why the exemption is sound. Required.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Path prefixes (relative to the workspace root) excluded from the sweep.
    pub exclude: Vec<String>,
    /// Crate short names whose results feed the simulation, where the
    /// determinism rules (`det001`/`det002`/`det004`) apply.
    pub sim_crates: Vec<String>,
    /// Module path prefixes treated as hot (all hot-path rules apply inside).
    pub hot_modules: Vec<String>,
    /// Function names (bare or `Type::method`) treated as hot.
    pub hot_functions: Vec<String>,
    /// Module/crate-level exemptions.
    pub allows: Vec<AllowEntry>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            exclude: vec!["vendor".into(), "target".into()],
            sim_crates: Vec::new(),
            hot_modules: Vec::new(),
            hot_functions: Vec::new(),
            allows: Vec::new(),
        }
    }
}

/// A config-file problem with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-indexed line in `lint.toml`.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[derive(Debug, Default)]
struct RawTable {
    strings: BTreeMap<String, String>,
    arrays: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// Parses the config from `lint.toml` text.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut tables: BTreeMap<String, RawTable> = BTreeMap::new();
        let mut allows_raw: Vec<(u32, RawTable)> = Vec::new();
        // Index into `allows_raw` while inside an `[[allow]]` block; None
        // while inside a plain `[table]`.
        let mut current_allow: Option<usize> = None;
        let mut current_table = String::new();

        // Pre-pass: join multi-line arrays (`key = [` … `]`) into one
        // logical line so the per-line parser below stays simple.
        let mut logical: Vec<(u32, String)> = Vec::new();
        for (idx, raw_line) in src.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = strip_comment(raw_line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            match logical.last_mut() {
                Some((_, prev)) if prev.contains('[') && !prev.contains(']') && prev.contains('=') => {
                    prev.push(' ');
                    prev.push_str(&line);
                }
                _ => logical.push((line_no, line)),
            }
        }

        for (line_no, line) in logical {
            let line = line.as_str();
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                let name = name.trim();
                if name != "allow" {
                    return Err(err(line_no, format!("unknown array table [[{name}]]")));
                }
                allows_raw.push((line_no, RawTable::default()));
                current_allow = Some(allows_raw.len() - 1);
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                current_table = name.trim().to_string();
                current_allow = None;
                continue;
            }
            let (key, value) = split_key_value(line, line_no)?;
            let target = match current_allow {
                Some(i) => &mut allows_raw[i].1,
                None => tables.entry(current_table.clone()).or_default(),
            };
            match parse_value(value, line_no)? {
                Value::Str(s) => {
                    target.strings.insert(key, s);
                }
                Value::Array(a) => {
                    target.arrays.insert(key, a);
                }
            }
        }

        let mut config = Config::default();
        for (name, table) in &tables {
            match name.as_str() {
                "paths" => {
                    if let Some(ex) = table.arrays.get("exclude") {
                        config.exclude = ex.clone();
                    }
                    reject_unknown(name, table, &["exclude"], &[])?;
                }
                "determinism" => {
                    if let Some(c) = table.arrays.get("crates") {
                        config.sim_crates = c.clone();
                    }
                    reject_unknown(name, table, &["crates"], &[])?;
                }
                "hot" => {
                    if let Some(m) = table.arrays.get("modules") {
                        config.hot_modules = m.clone();
                    }
                    if let Some(f) = table.arrays.get("functions") {
                        config.hot_functions = f.clone();
                    }
                    reject_unknown(name, table, &["modules", "functions"], &[])?;
                }
                other => {
                    return Err(err(0, format!("unknown table [{other}]")));
                }
            }
        }
        for (line_no, raw) in allows_raw {
            let rule = raw
                .strings
                .get("rule")
                .cloned()
                .ok_or_else(|| err(line_no, "[[allow]] entry missing `rule`".into()))?;
            let reason = raw
                .strings
                .get("reason")
                .cloned()
                .filter(|r| !r.trim().is_empty())
                .ok_or_else(|| {
                    err(line_no, format!("[[allow]] for {rule} missing a non-empty `reason`"))
                })?;
            let module = raw.strings.get("module").cloned();
            let krate = raw.strings.get("crate").cloned();
            if module.is_none() && krate.is_none() {
                return Err(err(
                    line_no,
                    format!("[[allow]] for {rule} needs a `module` or `crate` scope"),
                ));
            }
            for key in raw.strings.keys() {
                if !matches!(key.as_str(), "rule" | "reason" | "module" | "crate") {
                    return Err(err(line_no, format!("unknown [[allow]] key `{key}`")));
                }
            }
            config.allows.push(AllowEntry { rule, module, krate, reason });
        }
        Ok(config)
    }
}

enum Value {
    Str(String),
    Array(Vec<String>),
}

fn err(line: u32, message: String) -> ConfigError {
    ConfigError {
        line,
        message: message.to_string(),
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside a quoted string starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_key_value(line: &str, line_no: u32) -> Result<(String, &str), ConfigError> {
    let eq = line
        .find('=')
        .ok_or_else(|| err(line_no, format!("expected `key = value`, got `{line}`")))?;
    let key = line[..eq].trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(line_no, format!("bad key `{key}`")));
    }
    Ok((key.to_string(), line[eq + 1..].trim()))
}

fn parse_value(value: &str, line_no: u32) -> Result<Value, ConfigError> {
    if let Some(body) = value.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line_no, "arrays must close on the same line".into()))?;
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            items.push(parse_string(item, line_no)?);
        }
        return Ok(Value::Array(items));
    }
    Ok(Value::Str(parse_string(value, line_no)?))
}

fn parse_string(value: &str, line_no: u32) -> Result<String, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or_else(|| err(line_no, format!("expected a quoted string, got `{value}`")))
}

fn reject_unknown(
    table: &str,
    raw: &RawTable,
    arrays: &[&str],
    strings: &[&str],
) -> Result<(), ConfigError> {
    for key in raw.arrays.keys() {
        if !arrays.contains(&key.as_str()) {
            return Err(err(0, format!("unknown key `{key}` in [{table}]")));
        }
    }
    for key in raw.strings.keys() {
        if !strings.contains(&key.as_str()) {
            return Err(err(0, format!("unknown key `{key}` in [{table}]")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# workspace lint configuration
[paths]
exclude = ["vendor", "target"]

[determinism]
crates = ["engine", "fleet"]

[hot]
modules = ["engine::queue"]
functions = [
    "Matrix::matmul_into",  # multi-line arrays join into one logical line
    "Fleet::dispatch",
]

[[allow]]
rule = "det003"
module = "neural::parallel"
reason = "deterministic scoped fan-out"

[[allow]]
rule = "panic002"
crate = "bench"
reason = "experiment binaries may assert"
"#;

    #[test]
    fn parses_tables_arrays_and_allows() {
        let cfg = Config::parse(GOOD).expect("valid config");
        assert_eq!(cfg.exclude, vec!["vendor", "target"]);
        assert_eq!(cfg.sim_crates, vec!["engine", "fleet"]);
        assert_eq!(cfg.hot_modules, vec!["engine::queue"]);
        assert_eq!(
            cfg.hot_functions,
            vec!["Matrix::matmul_into", "Fleet::dispatch"]
        );
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].rule, "det003");
        assert_eq!(cfg.allows[0].module.as_deref(), Some("neural::parallel"));
        assert_eq!(cfg.allows[1].krate.as_deref(), Some("bench"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "[[allow]]\nrule = \"det001\"\nmodule = \"engine::time\"\n";
        let err = Config::parse(src).expect_err("reasonless allow");
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn allow_without_scope_is_rejected() {
        let src = "[[allow]]\nrule = \"det001\"\nreason = \"because\"\n";
        let err = Config::parse(src).expect_err("scopeless allow");
        assert!(err.message.contains("scope"), "{err}");
    }

    #[test]
    fn unknown_table_is_rejected() {
        let err = Config::parse("[nonsense]\nkey = \"v\"\n").expect_err("unknown table");
        assert!(err.message.contains("nonsense"), "{err}");
    }

    #[test]
    fn unknown_key_is_rejected() {
        let err = Config::parse("[paths]\nbogus = [\"x\"]\n").expect_err("unknown key");
        assert!(err.message.contains("bogus"), "{err}");
    }

    #[test]
    fn unquoted_value_is_rejected() {
        let err = Config::parse("[paths]\nexclude = [vendor]\n").expect_err("bare word");
        assert!(err.message.contains("quoted"), "{err}");
    }

    #[test]
    fn unclosed_array_at_eof_is_rejected() {
        let err = Config::parse("[hot]\nfunctions = [\n\"a\",\n").expect_err("unclosed");
        assert!(err.message.contains("close"), "{err}");
    }

    #[test]
    fn comments_inside_strings_are_preserved() {
        let cfg = Config::parse("[paths]\nexclude = [\"a#b\"]\n").expect("hash in string");
        assert_eq!(cfg.exclude, vec!["a#b"]);
    }
}
