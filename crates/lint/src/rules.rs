//! Rule definitions: identifiers, severities, and one-line rationales.
//!
//! The actual matching logic lives in [`crate::scan`]; this module is the
//! single registry every other layer (reporter, config validation, CLI
//! `rules` listing) keys off, so an unknown rule id in `lint.toml` or a
//! suppression comment is always detectable.

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (CI gate).
    Deny,
    /// Reported but does not fail the run.
    Warn,
}

impl Severity {
    /// Lowercase label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        }
    }
}

/// Static metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Stable identifier (`det001`, …) used in diagnostics and suppressions.
    pub id: &'static str,
    /// Whether a finding fails the run.
    pub severity: Severity,
    /// One-line statement of the contract the rule enforces.
    pub summary: &'static str,
}

/// Every rule the pass knows about.
///
/// Determinism rules guard the bit-identical-replay contract, hot-path rules
/// guard the zero-allocation kernels and service fast paths, panic rules
/// guard library crates against aborting the simulation, and the `lint*`
/// rules keep the suppression mechanism itself honest.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: "det001",
        severity: Severity::Deny,
        summary: "wall-clock time source (Instant/SystemTime) in a simulation crate; \
                  virtual time must come from engine::time::SimTime",
    },
    RuleMeta {
        id: "det002",
        severity: Severity::Deny,
        summary: "ambient RNG (thread_rng/rand::random) is seedless and breaks replay; \
                  draw from a named engine::rng::RngStream",
    },
    RuleMeta {
        id: "det003",
        severity: Severity::Deny,
        summary: "ad-hoc thread spawn outside an approved parallel module; \
                  fan out through neural::parallel's per-job-seed discipline",
    },
    RuleMeta {
        id: "det004",
        severity: Severity::Deny,
        summary: "HashMap/HashSet in a simulation crate iterates in arbitrary order; \
                  use BTreeMap/BTreeSet or a sorted Vec where order can feed results",
    },
    RuleMeta {
        id: "hot001",
        severity: Severity::Deny,
        summary: "allocation or clone in a configured hot path \
                  (clone/to_vec/Vec::new/vec!/format!/collect); reuse scratch buffers",
    },
    RuleMeta {
        id: "panic001",
        severity: Severity::Deny,
        summary: "unwrap() in library code can abort a long simulation; \
                  propagate a Result or document the invariant with expect + suppression",
    },
    RuleMeta {
        id: "panic002",
        severity: Severity::Deny,
        summary: "expect() in library code; acceptable only for documented invariants \
                  (suppress with the invariant as the reason)",
    },
    RuleMeta {
        id: "panic003",
        severity: Severity::Deny,
        summary: "direct literal index (x[0]) can panic on short slices; \
                  prefer first()/get() or prove length and suppress",
    },
    RuleMeta {
        id: "float001",
        severity: Severity::Deny,
        summary: "partial_cmp().unwrap()/expect() panics on NaN and hides a \
                  non-total order; use f64::total_cmp",
    },
    RuleMeta {
        id: "lint001",
        severity: Severity::Deny,
        summary: "suppression comment without a reason string; \
                  every exemption must say why it is sound",
    },
    RuleMeta {
        id: "lint002",
        severity: Severity::Deny,
        summary: "suppression comment that matches no finding; delete it so \
                  the suppression inventory stays truthful",
    },
    RuleMeta {
        id: "lint003",
        severity: Severity::Deny,
        summary: "suppression names an unknown rule id",
    },
];

/// Looks up a rule's metadata by id.
pub fn rule(id: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|r| r.id == id)
}
