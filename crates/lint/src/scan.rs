//! The analysis pass: walks a file's token stream with enough context
//! (crate, module path, enclosing `impl`/`fn`, `#[cfg(test)]` regions) to
//! evaluate every rule, then applies inline suppressions and `lint.toml`
//! allowlist entries.
//!
//! The matching is deliberately token-level — an over-approximation with no
//! type information. Rules are tuned so that a match is either a real
//! contract violation or a site worth an explicit, reasoned suppression.

use crate::config::Config;
use crate::lexer::{self, Suppression, Token, TokenKind};
use crate::rules::{self, Severity};

/// What kind of target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library or binary source (`src/`), including `src/bin/`.
    Lib,
    /// Integration tests (`tests/`).
    Test,
    /// Criterion benches (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// One diagnostic produced by the pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`det001`, …).
    pub rule: &'static str,
    /// Whether this finding fails the run.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Site-specific message.
    pub message: String,
}

/// Result of linting a single file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned inline suppression or allow entry.
    pub suppressed: usize,
    /// Unlexable constructs (reported as hard errors by the CLI).
    pub lex_errors: Vec<(u32, String)>,
}

/// Classification of one workspace file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Crate short name (`engine`, `fleet`, … or `sizeless` for the root).
    pub krate: String,
    /// Module path of the file itself (`core::service`, `neural::matrix`).
    pub module: String,
    /// Target kind, by path.
    pub kind: FileKind,
}

/// Derives crate name, module path, and target kind from a workspace-relative
/// path. Returns `None` for non-Rust files.
pub fn classify(rel_path: &str) -> Option<FileInfo> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (krate, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", krate, rest @ ..] if !rest.is_empty() => (krate.to_string(), rest),
        _ => ("sizeless".to_string(), &parts[..]),
    };
    let kind = if rest.contains(&"tests") {
        FileKind::Test
    } else if rest.contains(&"benches") {
        FileKind::Bench
    } else if rest.contains(&"examples") {
        FileKind::Example
    } else {
        FileKind::Lib
    };
    // Module path: crate name, then path segments after a leading `src`,
    // dropping `lib.rs`/`main.rs`/`mod.rs` stems.
    let mut module = vec![krate.clone()];
    let segs = if rest.first() == Some(&"src") { &rest[1..] } else { rest };
    for (i, seg) in segs.iter().enumerate() {
        let is_last = i + 1 == segs.len();
        let seg = if is_last { seg.trim_end_matches(".rs") } else { seg };
        if is_last && matches!(seg, "lib" | "main" | "mod") {
            continue;
        }
        module.push(seg.to_string());
    }
    Some(FileInfo {
        krate,
        module: module.join("::"),
        kind,
    })
}

#[derive(Debug)]
enum FrameKind {
    Mod(String),
    Fn(String),
    ImplBlock(String),
    Other,
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    test: bool,
}

#[derive(Debug)]
enum Pending {
    Fn(String),
    Mod(String),
    ImplBlock(String),
}

struct Walker<'a> {
    tokens: &'a [Token],
    frames: Vec<Frame>,
    pending: Option<Pending>,
    pending_test: bool,
}

impl<'a> Walker<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        Walker {
            tokens,
            frames: Vec::new(),
            pending: None,
            pending_test: false,
        }
    }

    fn in_test(&self) -> bool {
        self.frames.iter().any(|f| f.test)
    }

    fn module_suffix(&self) -> Vec<&str> {
        self.frames
            .iter()
            .filter_map(|f| match &f.kind {
                FrameKind::Mod(m) => Some(m.as_str()),
                _ => None,
            })
            .collect()
    }

    fn enclosing_fn(&self) -> Option<&str> {
        self.frames.iter().rev().find_map(|f| match &f.kind {
            FrameKind::Fn(name) => Some(name.as_str()),
            _ => None,
        })
    }

    /// Advances the item/frame state machine over token `i`.
    fn step(&mut self, i: usize) {
        let t = &self.tokens[i];
        match t.kind {
            // Outer attribute: `#[...]`. Inner attributes (`#![...]`)
            // don't gate the next item.
            TokenKind::Punct
                if t.text == "#"
                    && self.peek_is(i + 1, TokenKind::Open, "[")
                    && self.attr_marks_test(i + 1) =>
            {
                self.pending_test = true;
            }
            TokenKind::Punct if t.text == ";" => {
                // A semicolon ends a declaration (trait method, file module)
                // before any body brace: drop pending item state.
                self.pending = None;
                self.pending_test = false;
            }
            TokenKind::Ident => match t.text.as_str() {
                "fn" => {
                    if let Some(name) = self.ident_at(i + 1) {
                        let qualified = match self.frames.last() {
                            Some(Frame {
                                kind: FrameKind::ImplBlock(ty),
                                ..
                            }) => format!("{ty}::{name}"),
                            _ => name.to_string(),
                        };
                        self.pending = Some(Pending::Fn(qualified));
                    }
                }
                "mod" => {
                    if let Some(name) = self.ident_at(i + 1) {
                        self.pending = Some(Pending::Mod(name.to_string()));
                    }
                }
                "impl" => {
                    if let Some(ty) = self.impl_type_name(i + 1) {
                        self.pending = Some(Pending::ImplBlock(ty));
                    }
                }
                _ => {}
            },
            TokenKind::Open if t.text == "{" => {
                let kind = match self.pending.take() {
                    Some(Pending::Fn(name)) => FrameKind::Fn(name),
                    Some(Pending::Mod(name)) => FrameKind::Mod(name),
                    Some(Pending::ImplBlock(ty)) => FrameKind::ImplBlock(ty),
                    None => FrameKind::Other,
                };
                self.frames.push(Frame {
                    kind,
                    test: self.pending_test,
                });
                self.pending_test = false;
            }
            TokenKind::Close if t.text == "}" => {
                self.frames.pop();
            }
            _ => {}
        }
    }

    fn peek_is(&self, i: usize, kind: TokenKind, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == kind && t.text == text)
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.tokens
            .get(i)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
    }

    /// `open` points at the `[` of an outer attribute. True when it gates the
    /// next item to test-only builds (`#[test]`, `#[cfg(test)]`, `#[bench]`)
    /// — but not `#[cfg(not(test))]`.
    fn attr_marks_test(&self, open: usize) -> bool {
        let mut depth = 0usize;
        let mut saw_test = false;
        let mut saw_not = false;
        for t in &self.tokens[open..] {
            match t.kind {
                TokenKind::Open => depth += 1,
                TokenKind::Close => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident if t.text == "test" || t.text == "bench" => saw_test = true,
                TokenKind::Ident if t.text == "not" => saw_not = true,
                _ => {}
            }
        }
        saw_test && !saw_not
    }

    /// `start` is the token after `impl`; extracts the implemented type's
    /// name (the path tail after `for` when present).
    fn impl_type_name(&self, mut start: usize) -> Option<String> {
        // Skip the generic parameter list, if any.
        if self.peek_is(start, TokenKind::Punct, "<") {
            let mut depth = 0i32;
            while let Some(t) = self.tokens.get(start) {
                if t.kind == TokenKind::Punct && t.text == "<" {
                    depth += 1;
                } else if t.kind == TokenKind::Punct && t.text == ">" {
                    depth -= 1;
                    if depth == 0 {
                        start += 1;
                        break;
                    }
                }
                start += 1;
            }
        }
        // Scan the header up to `{`; restart path capture after `for`.
        let mut last_path_ident: Option<&str> = None;
        let mut angle_depth = 0i32;
        let mut i = start;
        while let Some(t) = self.tokens.get(i) {
            match t.kind {
                TokenKind::Open if t.text == "{" => break,
                TokenKind::Punct if t.text == ";" => return None,
                TokenKind::Punct if t.text == "<" => angle_depth += 1,
                TokenKind::Punct if t.text == ">" => angle_depth -= 1,
                TokenKind::Ident if angle_depth == 0 => {
                    if t.text == "for" {
                        last_path_ident = None;
                    } else if t.text != "dyn" && t.text != "where" {
                        last_path_ident = Some(&t.text);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        last_path_ident.map(|s| s.to_string())
    }
}

/// Lints one file's source, returning suppression-filtered findings.
pub fn lint_source(rel_path: &str, src: &str, config: &Config) -> FileReport {
    let Some(info) = classify(rel_path) else {
        return FileReport::default();
    };
    let lexed = lexer::lex(src);
    let tokens = &lexed.tokens;
    let mut walker = Walker::new(tokens);
    let mut raw: Vec<Finding> = Vec::new();

    for i in 0..tokens.len() {
        walker.step(i);
        check_token(tokens, i, &walker, &info, config, rel_path, &mut raw);
    }

    filter_report(rel_path, &info, raw, &lexed.suppressions, tokens, config, lexed.errors)
}

const FALLBACK_META: rules::RuleMeta = rules::RuleMeta {
    id: "lint000",
    severity: Severity::Deny,
    summary: "internal: finding raised for a rule missing from the registry",
};

fn mk(rule: &'static str, path: &str, t: &Token, message: String) -> Finding {
    let meta = rules::rule(rule).unwrap_or(&FALLBACK_META);
    Finding {
        rule: meta.id,
        severity: meta.severity,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message,
    }
}

#[allow(clippy::too_many_arguments)]
fn check_token(
    tokens: &[Token],
    i: usize,
    walker: &Walker<'_>,
    info: &FileInfo,
    config: &Config,
    path: &str,
    out: &mut Vec<Finding>,
) {
    let t = &tokens[i];
    let in_test = info.kind == FileKind::Test || walker.in_test();
    let lib_code = info.kind == FileKind::Lib && !in_test;
    let sim_crate = config.sim_crates.iter().any(|c| c == &info.krate);
    let prev_is = |text: &str| i > 0 && tokens[i - 1].kind == TokenKind::Punct && tokens[i - 1].text == text;
    let next_is_open_paren =
        || tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Open && n.text == "(");

    if t.kind == TokenKind::Ident {
        let name = t.text.as_str();
        // det001 — wall-clock time sources in simulation crates.
        if lib_code && sim_crate && (name == "Instant" || name == "SystemTime") {
            out.push(mk(
                "det001",
                path,
                t,
                format!("`{name}` is wall-clock time; simulations must read engine::time::SimTime"),
            ));
        }
        // det002 — ambient, seedless RNG.
        if lib_code
            && (name == "thread_rng"
                || (name == "random" && path_prefix_is(tokens, i, "rand")))
        {
            out.push(mk(
                "det002",
                path,
                t,
                "ambient RNG has no seed and breaks bit-identical replay; \
                 draw from a named engine::rng::RngStream"
                    .into(),
            ));
        }
        // det003 — ad-hoc threading outside approved parallel modules.
        if lib_code
            && (name == "spawn" || name == "scope")
            && path_prefix_is(tokens, i, "thread")
        {
            out.push(mk(
                "det003",
                path,
                t,
                format!(
                    "`thread::{name}` outside an approved parallel module; \
                     fan out via neural::parallel so per-job seeding holds"
                ),
            ));
        }
        // det004 — arbitrary-order hash collections in simulation crates.
        if lib_code
            && sim_crate
            && matches!(name, "HashMap" | "HashSet" | "FxHashMap" | "FxHashSet")
        {
            out.push(mk(
                "det004",
                path,
                t,
                format!("`{name}` iterates in arbitrary order; use BTreeMap/BTreeSet or a sorted Vec"),
            ));
        }
        // hot001 — allocation/clone tokens inside configured hot paths.
        if lib_code && in_hot_path(walker, info, config) {
            let method_hit = matches!(name, "clone" | "to_vec" | "collect") && prev_is(".");
            let vec_new = name == "Vec" && path_suffix_is(tokens, i, "new");
            let macro_hit = matches!(name, "vec" | "format")
                && tokens
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!");
            if method_hit || vec_new || macro_hit {
                let what = if vec_new {
                    "Vec::new".to_string()
                } else if macro_hit {
                    format!("{name}!")
                } else {
                    format!(".{name}()")
                };
                out.push(mk(
                    "hot001",
                    path,
                    t,
                    format!("`{what}` allocates in a declared hot path; reuse a scratch buffer"),
                ));
            }
        }
        // panic001 / panic002 — unwrap/expect in library code.
        if lib_code && name == "unwrap" && prev_is(".") && next_is_open_paren() {
            out.push(mk(
                "panic001",
                path,
                t,
                "`.unwrap()` can abort the simulation; propagate a Result or \
                 use expect with a documented invariant"
                    .into(),
            ));
        }
        if lib_code && name == "expect" && prev_is(".") && next_is_open_paren() {
            out.push(mk(
                "panic002",
                path,
                t,
                "`.expect()` in library code; suppress with the invariant as \
                 the reason or propagate a Result"
                    .into(),
            ));
        }
        // float001 — NaN-panicking comparisons (applies everywhere).
        if name == "partial_cmp" && next_is_open_paren() {
            if let Some(close) = matching_close(tokens, i + 1) {
                let after_dot = tokens
                    .get(close + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == ".");
                let unwrapish = tokens.get(close + 2).is_some_and(|n| {
                    n.kind == TokenKind::Ident && (n.text == "unwrap" || n.text == "expect")
                });
                if after_dot && unwrapish {
                    out.push(mk(
                        "float001",
                        path,
                        t,
                        "`partial_cmp(..).unwrap()` panics on NaN and is not a \
                         total order; use f64::total_cmp"
                            .into(),
                    ));
                }
            }
        }
    }

    // panic003 — literal index on an identifier.
    if lib_code
        && t.kind == TokenKind::Open
        && t.text == "["
        && i > 0
        && tokens[i - 1].kind == TokenKind::Ident
        && !matches!(tokens[i - 1].text.as_str(), "mut" | "in" | "return" | "else")
        && tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Num)
        && tokens
            .get(i + 2)
            .is_some_and(|n| n.kind == TokenKind::Close && n.text == "]")
    {
        out.push(mk(
            "panic003",
            path,
            t,
            format!(
                "literal index `{}[{}]` panics when the slice is short; \
                 prefer first()/get() or prove the length",
                tokens[i - 1].text,
                tokens[i + 1].text
            ),
        ));
    }
}

/// True when `tokens[i]` is the tail of a `prefix::tail` path.
fn path_prefix_is(tokens: &[Token], i: usize, prefix: &str) -> bool {
    i >= 3
        && tokens[i - 1].kind == TokenKind::Punct
        && tokens[i - 1].text == ":"
        && tokens[i - 2].kind == TokenKind::Punct
        && tokens[i - 2].text == ":"
        && tokens[i - 3].kind == TokenKind::Ident
        && tokens[i - 3].text == prefix
}

/// True when `tokens[i]` is the head of a `head::suffix` path.
fn path_suffix_is(tokens: &[Token], i: usize, suffix: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Punct && t.text == ":")
        && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Punct && t.text == ":")
        && tokens.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident && t.text == suffix)
}

/// Index of the `Close` matching the `Open` at `open`.
fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Open => depth += 1,
            TokenKind::Close => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn in_hot_path(walker: &Walker<'_>, info: &FileInfo, config: &Config) -> bool {
    let mut module = info.module.clone();
    for seg in walker.module_suffix() {
        module.push_str("::");
        module.push_str(seg);
    }
    if config
        .hot_modules
        .iter()
        .any(|m| module == *m || module.starts_with(&format!("{m}::")))
    {
        return true;
    }
    match walker.enclosing_fn() {
        Some(qualified) => config.hot_functions.iter().any(|f| {
            f == qualified || Some(f.as_str()) == qualified.rsplit("::").next()
        }),
        None => false,
    }
}

/// Applies inline suppressions and `lint.toml` allows, and emits the
/// suppression-hygiene findings (`lint001`–`lint003`).
fn filter_report(
    path: &str,
    info: &FileInfo,
    raw: Vec<Finding>,
    suppressions: &[Suppression],
    tokens: &[Token],
    config: &Config,
    lex_errors: Vec<(u32, String)>,
) -> FileReport {
    let mut report = FileReport {
        lex_errors,
        ..Default::default()
    };

    // Resolve each suppression to the line it covers: its own line for a
    // trailing comment, the next code line for a standalone one.
    let mut resolved: Vec<(usize, u32, bool)> = Vec::new(); // (index, line, valid)
    for (si, s) in suppressions.iter().enumerate() {
        for r in &s.rules {
            if rules::rule(r).is_none() {
                report.findings.push(Finding {
                    rule: "lint003",
                    severity: Severity::Deny,
                    path: path.to_string(),
                    line: s.line,
                    col: s.col,
                    message: format!("suppression names unknown rule `{r}`"),
                });
            }
        }
        let valid = s.reason.is_some();
        if !valid {
            report.findings.push(Finding {
                rule: "lint001",
                severity: Severity::Deny,
                path: path.to_string(),
                line: s.line,
                col: s.col,
                message: format!(
                    "suppression of {} has no reason; write `lint: allow({}) reason=\"…\"`",
                    s.rules.join(", "),
                    s.rules.join(", ")
                ),
            });
        }
        let effective = if s.own_line {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > s.line)
                .unwrap_or(u32::MAX)
        } else {
            s.line
        };
        resolved.push((si, effective, valid));
    }

    let mut used = vec![false; suppressions.len()];
    for f in raw {
        // lint.toml allow entries: module-prefix or crate scope.
        let allowed = config.allows.iter().any(|a| {
            a.rule == f.rule
                && (a.krate.as_deref() == Some(info.krate.as_str())
                    || a.module.as_deref().is_some_and(|m| {
                        info.module == m || info.module.starts_with(&format!("{m}::"))
                    }))
        });
        if allowed {
            report.suppressed += 1;
            continue;
        }
        let inline = resolved.iter().find(|(si, line, valid)| {
            *valid && *line == f.line && suppressions[*si].rules.iter().any(|r| r == f.rule)
        });
        if let Some((si, _, _)) = inline {
            used[*si] = true;
            report.suppressed += 1;
            continue;
        }
        report.findings.push(f);
    }

    for (si, s) in suppressions.iter().enumerate() {
        if s.reason.is_some() && !used[si] && s.rules.iter().all(|r| rules::rule(r).is_some()) {
            report.findings.push(Finding {
                rule: "lint002",
                severity: Severity::Deny,
                path: path.to_string(),
                line: s.line,
                col: s.col,
                message: format!(
                    "suppression of {} matches no finding on its target line; delete it",
                    s.rules.join(", ")
                ),
            });
        }
    }

    report.findings.sort_by_key(|f| (f.line, f.col));
    report
}
