//! A small hand-rolled Rust lexer.
//!
//! The linter deliberately avoids `syn` (consistent with the workspace's
//! vendored-offline dependency policy), so rules operate on a flat token
//! stream produced here. The lexer understands exactly enough Rust to keep
//! rules from firing inside places that are not code:
//!
//! - line comments (`//`), doc comments, and nested block comments
//!   (`/* /* */ */`),
//! - string literals with escapes, raw strings with any number of `#`
//!   guards (`r"…"`, `r#"…"#`, `br##"…"##`),
//! - char literals vs. lifetimes (`'a'` vs. `'a`),
//! - numeric literals (including underscores and type suffixes),
//! - identifiers (including raw identifiers `r#match`) and single-char
//!   punctuation, with `(`/`[`/`{` and their closers tagged as delimiters
//!   so callers can walk token trees.
//!
//! Every token carries a 1-indexed `line`/`col` span so diagnostics point at
//! the exact source location. Lint suppression comments
//! (`// lint: allow(rule) reason="…"`) are recognized during lexing and
//! returned alongside the token stream — they live in comments, which rules
//! never see.

/// What kind of source atom a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `Instant`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// String, raw-string, byte-string, or char literal.
    Str,
    /// Numeric literal (`1`, `0x_FF`, `1.5e3f64`).
    Num,
    /// Single punctuation character that is not a delimiter.
    Punct,
    /// Opening delimiter: `(`, `[`, or `{`.
    Open,
    /// Closing delimiter: `)`, `]`, or `}`.
    Close,
}

/// One lexed token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw source text of the token (string literals keep their quotes).
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed source column (in chars).
    pub col: u32,
}

/// A `// lint: allow(rule, …) reason="…"` comment found while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule identifiers listed inside `allow(…)`.
    pub rules: Vec<String>,
    /// The quoted reason, if one was given.
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// Column of the `//`.
    pub col: u32,
    /// True when the comment is the only thing on its line, in which case it
    /// applies to the next code line instead of its own.
    pub own_line: bool,
}

/// Output of [`lex`]: the token stream plus any suppression comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All suppression comments in source order.
    pub suppressions: Vec<Suppression>,
    /// Lines that could not be lexed cleanly (unterminated literals, …).
    pub errors: Vec<(u32, String)>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count chars, not bytes: only advance on non-continuation bytes.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, returning tokens, suppression comments, and lex errors.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    // Tracks whether any token has been emitted on the current line, so a
    // suppression comment knows if it trails code or stands alone.
    let mut code_on_line: u32 = 0;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let comment = read_line_comment(&mut cur);
                if let Some(mut s) = parse_suppression(&comment) {
                    s.line = line;
                    s.col = col;
                    s.own_line = code_on_line != line;
                    out.suppressions.push(s);
                }
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                if !skip_block_comment(&mut cur) {
                    out.errors.push((line, "unterminated block comment".into()));
                }
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                match read_raw_or_byte_string(&mut cur) {
                    Ok(text) => push(&mut out.tokens, TokenKind::Str, text, line, col),
                    Err(e) => out.errors.push((line, e)),
                }
                code_on_line = line;
            }
            b'"' => {
                match read_string(&mut cur) {
                    Ok(text) => push(&mut out.tokens, TokenKind::Str, text, line, col),
                    Err(e) => out.errors.push((line, e)),
                }
                code_on_line = line;
            }
            b'\'' => {
                let (kind, text) = read_char_or_lifetime(&mut cur);
                push(&mut out.tokens, kind, text, line, col);
                code_on_line = line;
            }
            _ if is_ident_start(b) => {
                let text = read_ident(&mut cur);
                push(&mut out.tokens, TokenKind::Ident, text, line, col);
                code_on_line = line;
            }
            _ if b.is_ascii_digit() => {
                let text = read_number(&mut cur);
                push(&mut out.tokens, TokenKind::Num, text, line, col);
                code_on_line = line;
            }
            b'(' | b'[' | b'{' => {
                cur.bump();
                push(&mut out.tokens, TokenKind::Open, (b as char).to_string(), line, col);
                code_on_line = line;
            }
            b')' | b']' | b'}' => {
                cur.bump();
                push(&mut out.tokens, TokenKind::Close, (b as char).to_string(), line, col);
                code_on_line = line;
            }
            _ => {
                cur.bump();
                push(&mut out.tokens, TokenKind::Punct, (b as char).to_string(), line, col);
                code_on_line = line;
            }
        }
    }
    out
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, text: String, line: u32, col: u32) {
    tokens.push(Token { kind, text, line, col });
}

fn read_line_comment(cur: &mut Cursor) -> String {
    let start = cur.pos;
    while let Some(b) = cur.peek() {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

fn skip_block_comment(cur: &mut Cursor) -> bool {
    // Consume `/*`; nested block comments nest like in Rust.
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => return false,
        }
    }
    true
}

fn starts_raw_or_byte_string(cur: &Cursor) -> bool {
    // r"…", r#"…"#, br"…", b"…", b'…' — only the string forms are handled
    // here; a bare ident like `radius` must fall through to ident lexing.
    let b0 = cur.peek();
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"')) | (Some(b'r'), Some(b'#')) => {
            // `r#ident` is a raw identifier, not a raw string: require that a
            // `"` follows the `#` run.
            let mut i = 1;
            while cur.peek_at(i) == Some(b'#') {
                i += 1;
            }
            cur.peek_at(i) == Some(b'"')
        }
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => {
            let mut i = 2;
            while cur.peek_at(i) == Some(b'#') {
                i += 1;
            }
            cur.peek_at(i) == Some(b'"')
        }
        _ => false,
    }
}

fn read_raw_or_byte_string(cur: &mut Cursor) -> Result<String, String> {
    let start = cur.pos;
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'\'') {
        // Byte char literal b'x'.
        cur.bump();
        if cur.peek() == Some(b'\\') {
            cur.bump();
            cur.bump();
        } else {
            cur.bump();
        }
        if cur.peek() == Some(b'\'') {
            cur.bump();
            return Ok(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned());
        }
        return Err("unterminated byte literal".into());
    }
    let raw = cur.peek() == Some(b'r');
    if raw {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        return Err("malformed raw string start".into());
    }
    cur.bump();
    if raw {
        // Scan until `"` followed by `hashes` `#`s.
        loop {
            match cur.peek() {
                None => return Err("unterminated raw string".into()),
                Some(b'"') => {
                    cur.bump();
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some(b'#') {
                        cur.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return Ok(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned());
                    }
                }
                Some(_) => {
                    cur.bump();
                }
            }
        }
    } else {
        // b"…" with escapes.
        read_string_tail(cur)?;
        Ok(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned())
    }
}

fn read_string(cur: &mut Cursor) -> Result<String, String> {
    let start = cur.pos;
    cur.bump(); // opening quote
    read_string_tail(cur)?;
    Ok(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned())
}

fn read_string_tail(cur: &mut Cursor) -> Result<(), String> {
    loop {
        match cur.peek() {
            None => return Err("unterminated string literal".into()),
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'"') => {
                cur.bump();
                return Ok(());
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

fn read_char_or_lifetime(cur: &mut Cursor) -> (TokenKind, String) {
    let start = cur.pos;
    cur.bump(); // the `'`
    if cur.peek() == Some(b'\\') {
        // Escaped char literal '\n', '\u{…}'.
        cur.bump();
        while let Some(b) = cur.peek() {
            cur.bump();
            if b == b'\'' {
                break;
            }
        }
        return (
            TokenKind::Str,
            String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        );
    }
    // `'a'` (char) vs `'a` / `'static` (lifetime): consume ident chars, then
    // check for a closing quote.
    if cur.peek().is_some_and(is_ident_start) {
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        if cur.peek() == Some(b'\'') {
            cur.bump();
            return (
                TokenKind::Str,
                String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
            );
        }
        return (
            TokenKind::Lifetime,
            String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        );
    }
    // Something like `'(' '` — a char literal of punctuation.
    if let Some(b) = cur.peek() {
        cur.bump();
        if b != b'\'' && cur.peek() == Some(b'\'') {
            cur.bump();
        }
    }
    (
        TokenKind::Str,
        String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
    )
}

fn read_ident(cur: &mut Cursor) -> String {
    let start = cur.pos;
    // Raw identifier prefix r#.
    if cur.peek() == Some(b'r') && cur.peek_at(1) == Some(b'#') && cur.peek_at(2).is_some_and(is_ident_start) {
        cur.bump();
        cur.bump();
    }
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

fn read_number(cur: &mut Cursor) -> String {
    let start = cur.pos;
    // Leading digits (incl. 0x/0b/0o bodies, underscores, suffixes). A `.`
    // is part of the number only when followed by a digit, so `1.max(2)`
    // lexes as `1` `.` `max` … and method-call rules keep working.
    while let Some(b) = cur.peek() {
        if b.is_ascii_alphanumeric()
            || b == b'_'
            || (b == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
        {
            cur.bump();
        } else if (b == b'+' || b == b'-')
            && matches!(cur.src.get(cur.pos.wrapping_sub(1)), Some(b'e') | Some(b'E'))
            && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
        {
            // Exponent sign inside `1e-3`.
            cur.bump();
        } else {
            break;
        }
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

/// Parses a `lint: allow(rule, …) reason="…"` directive out of a `//` comment
/// body. Returns `None` for ordinary comments.
fn parse_suppression(comment: &str) -> Option<Suppression> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix("reason")
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix('='))
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.find('"').map(|end| t[..end].to_string()))
        .filter(|r| !r.trim().is_empty());
    Some(Suppression {
        rules,
        reason,
        line: 0,
        col: 0,
        own_line: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_inside_strings_are_not_tokens() {
        let src = r#"let s = "Instant::now() // not a comment"; s.len()"#;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"len".to_string()));
        // The string itself survives as a single Str token, quotes included.
        let strs: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.starts_with('"') && strs[0].text.ends_with('"'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let ids = idents(r#"let s = "a \" HashMap \" b"; drop(s)"#);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"drop".to_string()));
    }

    #[test]
    fn raw_strings_with_hash_guards_span_inner_quotes() {
        let src = "let s = r##\"quote \" and #\" inside thread_rng\"##; use_it(s)";
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()), "{ids:?}");
        assert!(ids.contains(&"use_it".to_string()));
    }

    #[test]
    fn line_comments_hide_code() {
        let ids = idents("let a = 1; // Instant::now()\nlet b = 2;");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let src = "before /* outer /* inner Instant */ still_comment */ after";
        let ids = idents(src);
        assert_eq!(ids, vec!["before".to_string(), "after".to_string()]);
    }

    #[test]
    fn char_literal_is_not_a_lifetime() {
        let toks = lex("let c = 'a'; fn f<'a>(x: &'a str) {}").tokens;
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(chars.len(), 1, "one char literal");
        assert_eq!(chars[0].text, "'a'");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2, "declaration + use");
    }

    #[test]
    fn delimiters_nest_and_positions_are_tracked() {
        let toks = lex("fn f() {\n    g([1, 2]);\n}").tokens;
        let opens = toks.iter().filter(|t| t.kind == TokenKind::Open).count();
        let closes = toks.iter().filter(|t| t.kind == TokenKind::Close).count();
        assert_eq!(opens, 4);
        assert_eq!(closes, 4);
        let g = toks.iter().find(|t| t.text == "g").expect("g token");
        assert_eq!((g.line, g.col), (2, 5));
    }

    #[test]
    fn numeric_literals_lex_as_one_token() {
        let toks = lex("let x = 1.5e3f64 + 0x_FF;").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e3f64", "0x_FF"]);
    }

    #[test]
    fn unterminated_string_is_a_lex_error() {
        let lexed = lex("let s = \"never closed");
        assert_eq!(lexed.errors.len(), 1);
        assert_eq!(lexed.errors[0].0, 1);
    }

    #[test]
    fn trailing_suppression_is_parsed_with_reason() {
        let lexed = lex("let x = v[0]; // lint: allow(panic003) reason=\"fixture\"\n");
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert_eq!(s.rules, vec!["panic003".to_string()]);
        assert_eq!(s.reason.as_deref(), Some("fixture"));
        assert!(!s.own_line, "code precedes the comment on its line");
    }

    #[test]
    fn own_line_suppression_lists_multiple_rules() {
        let lexed = lex("// lint: allow(det001, det002) reason=\"both\"\nlet x = 1;\n");
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert_eq!(s.rules, vec!["det001".to_string(), "det002".to_string()]);
        assert!(s.own_line);
        assert_eq!(s.line, 1);
    }

    #[test]
    fn reasonless_suppression_has_no_reason() {
        let lexed = lex("// lint: allow(det001)\nlet x = 1;\n");
        assert_eq!(lexed.suppressions.len(), 1);
        assert_eq!(lexed.suppressions[0].reason, None);
    }

    #[test]
    fn ordinary_comments_are_not_suppressions() {
        let lexed = lex("// just a note about allow lists\nlet x = 1;\n");
        assert!(lexed.suppressions.is_empty());
    }
}
