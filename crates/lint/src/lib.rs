//! `sizeless_lint` — the workspace's contract-enforcing static-analysis pass.
//!
//! The simulator's headline property is bit-identical replay of multi-region
//! fleet simulations at any thread count, and its training hot paths are
//! allocation-free by design. Both are easy to break silently: one stray
//! `Instant::now()`, an unordered-map iteration, or a reintroduced `clone()`
//! in a kernel undoes guarantees the rest of the workspace depends on. This
//! crate makes those contracts machine-checked: a token-level analysis pass
//! (hand-rolled lexer, no `syn` — consistent with the vendored-offline
//! dependency policy) that sweeps every first-party Rust source and fails CI
//! on new violations.
//!
//! Rule families (see [`rules::RULES`] for the full registry):
//!
//! - **determinism** (`det001`–`det004`): wall-clock time, ambient RNG,
//!   ad-hoc threading, and arbitrary-order hash collections;
//! - **hot path** (`hot001`): allocation/clone tokens inside the configured
//!   hot functions and modules;
//! - **panic safety** (`panic001`–`panic003`): `unwrap`/`expect`/literal
//!   indexing in non-test library code;
//! - **float determinism** (`float001`): `partial_cmp(..).unwrap()` where
//!   `total_cmp` is required;
//! - **suppression hygiene** (`lint001`–`lint003`): reasonless, stale, or
//!   unknown-rule suppressions.
//!
//! Existing, triaged sites are recorded either inline —
//! `// lint: allow(panic002) reason="…"` — or as module/crate-scoped
//! `[[allow]]` entries in the checked-in `lint.toml`; anything new fails.
//!
//! # Examples
//!
//! ```
//! use sizeless_lint::{config::Config, scan::lint_source};
//!
//! let cfg = Config {
//!     sim_crates: vec!["engine".into()],
//!     ..Config::default()
//! };
//! let report = lint_source(
//!     "crates/engine/src/clock.rs",
//!     "fn now() -> std::time::Instant { std::time::Instant::now() }",
//!     &cfg,
//! );
//! assert!(report.findings.iter().all(|f| f.rule == "det001"));
//! assert_eq!(report.findings.len(), 2); // the type and the call site
//! ```

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use config::Config;
use scan::{FileReport, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregate result of sweeping a workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Unsuppressed findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Count of findings silenced by reasoned suppressions/allows.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Per-file lexer failures, reported as hard errors.
    pub lex_errors: Vec<(String, u32, String)>,
}

impl WorkspaceReport {
    /// Number of findings that fail the run.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == rules::Severity::Deny)
            .count()
            + self.lex_errors.len()
    }
}

/// Validates that every `[[allow]]` entry names a known rule.
pub fn validate_config(config: &Config) -> Result<(), String> {
    for a in &config.allows {
        if rules::rule(&a.rule).is_none() {
            return Err(format!("lint.toml: [[allow]] names unknown rule `{}`", a.rule));
        }
    }
    Ok(())
}

/// Sweeps every first-party `.rs` file under `root` and lints it.
///
/// Directory traversal is sorted so output (and CI failure order) is
/// deterministic. Paths whose first components match a `[paths] exclude`
/// prefix — `vendor/`, `target/`, and the linter's own violation fixtures —
/// are skipped, as are dot-directories.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut report = WorkspaceReport::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let FileReport {
            findings,
            suppressed,
            lex_errors,
        } = scan::lint_source(&rel_str, &src, config);
        report.files += 1;
        report.suppressed += suppressed;
        report.findings.extend(findings);
        report
            .lex_errors
            .extend(lex_errors.into_iter().map(|(l, m)| (rel_str.clone(), l, m)));
    }
    Ok(report)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if config
            .exclude
            .iter()
            .any(|ex| rel_str == *ex || rel_str.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, config, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}
