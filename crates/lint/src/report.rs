//! Diagnostic rendering: rustc-style `path:line:col` lines plus a summary.

use crate::rules;
use crate::scan::Finding;
use crate::WorkspaceReport;
use std::fmt::Write as _;

/// Renders one finding as a `path:line:col: severity[rule]: message` line
/// followed by the rule's rationale.
pub fn render_finding(f: &Finding) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}:{}:{}: {}[{}]: {}",
        f.path,
        f.line,
        f.col,
        f.severity.label(),
        f.rule,
        f.message
    );
    if let Some(meta) = rules::rule(f.rule) {
        let _ = writeln!(out, "    contract: {}", meta.summary);
    }
    out
}

/// Renders the full report; returns the text and whether the run failed.
pub fn render(report: &WorkspaceReport) -> (String, bool) {
    let mut out = String::new();
    for (path, line, msg) in &report.lex_errors {
        let _ = writeln!(out, "{path}:{line}:1: error[lex]: {msg}");
    }
    for f in &report.findings {
        out.push_str(&render_finding(f));
    }
    let failed = report.deny_count() > 0;
    let _ = writeln!(
        out,
        "sizeless-lint: {} file(s) scanned, {} finding(s), {} suppressed with reasons",
        report.files,
        report.findings.len(),
        report.suppressed
    );
    if failed {
        let _ = writeln!(
            out,
            "sizeless-lint: FAILED — fix the sites above or add a reasoned suppression \
             (`// lint: allow(<rule>) reason=\"…\"` or a [[allow]] entry in lint.toml)"
        );
    } else {
        let _ = writeln!(out, "sizeless-lint: OK");
    }
    (out, failed)
}

/// Renders the rule registry for `sizeless_lint rules`.
pub fn render_rules() -> String {
    let mut out = String::new();
    for r in rules::RULES {
        let _ = writeln!(out, "{:8} {:7} {}", r.id, r.severity.label(), r.summary);
    }
    out
}
