//! The instance model: warm pools of function instances.
//!
//! On Lambda, every function owns a fleet of sandboxes ("instances"): an
//! invocation either reuses a warm instance or pays a cold start, and idle
//! instances are reclaimed after a keep-alive window. [`WarmPool`] is that
//! model, shared by the single-function measurement harness
//! (`sizeless_workload::run_experiment`) and the cluster-level fleet
//! simulator (`sizeless_fleet`), so both layers agree on cold-start
//! semantics.
//!
//! Beyond the seed implementation this pool supports:
//!
//! * a **finite capacity bound** ([`WarmPool::with_capacity`]) — the fleet
//!   maps host memory onto it, and [`WarmPool::try_begin`] reports
//!   exhaustion instead of provisioning without bound;
//! * **per-instance keep-alive TTLs** ([`WarmPool::complete_with_ttl`]) so
//!   pluggable keep-alive policies can shrink or stretch the window per
//!   invocation;
//! * **wasted-time accounting**: every millisecond an instance sits warm
//!   but idle is accrued into [`WarmPool::wasted_idle_ms`], the basis of
//!   the fleet's wasted MB·ms metric;
//! * **eviction** ([`WarmPool::evict_lru_idle`]) so a host can reclaim
//!   memory from idle instances to place a new one.

use serde::{Deserialize, Serialize};

/// One instance slot. Dead slots are kept (never reused) so
/// [`InstanceId`]s stay stable for in-flight invocations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Slot {
    /// `f64::INFINITY` while an invocation runs on the instance.
    busy_until_ms: f64,
    /// When the instance last finished an invocation (or was provisioned).
    last_release_ms: f64,
    /// Keep-alive window for this instance (defaults to the pool TTL).
    ttl_ms: f64,
    /// Reclaimed (expired or evicted); the slot no longer holds memory.
    dead: bool,
}

impl Slot {
    fn is_busy(&self) -> bool {
        self.busy_until_ms == f64::INFINITY
    }

    fn is_idle(&self) -> bool {
        !self.dead && !self.is_busy()
    }
}

/// A per-function pool of warm instances, deciding which invocations pay a
/// cold start. Instances are reclaimed after their keep-alive TTL (the
/// cold-start model's idle TTL by default).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WarmPool {
    slots: Vec<Slot>,
    idle_ttl_ms: f64,
    /// Maximum number of live (warm or busy) instances; `None` = unbounded.
    capacity: Option<usize>,
    live: usize,
    busy: usize,
    evictions: usize,
    expirations: usize,
    wasted_idle_ms: f64,
}

/// Identifies an acquired instance until [`WarmPool::complete`] is called.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceId(usize);

impl WarmPool {
    /// Creates an unbounded pool with the given idle TTL (ms).
    pub fn new(idle_ttl_ms: f64) -> Self {
        WarmPool {
            idle_ttl_ms,
            ..WarmPool::default()
        }
    }

    /// Creates a pool that never holds more than `capacity` live instances.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(idle_ttl_ms: f64, capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        WarmPool {
            idle_ttl_ms,
            capacity: Some(capacity),
            ..WarmPool::default()
        }
    }

    /// The default keep-alive window of this pool, ms.
    pub fn idle_ttl_ms(&self) -> f64 {
        self.idle_ttl_ms
    }

    /// Reclaims instances whose keep-alive window elapsed before `now_ms`,
    /// accruing their idle tail as wasted time.
    pub fn reap(&mut self, now_ms: f64) {
        for slot in &mut self.slots {
            if slot.is_idle() && now_ms - slot.last_release_ms > slot.ttl_ms {
                slot.dead = true;
                self.live -= 1;
                self.expirations += 1;
                self.wasted_idle_ms += slot.ttl_ms;
            }
        }
    }

    /// Acquires an instance for an invocation arriving at `at_ms`, or
    /// `None` when every live instance is busy and the pool is at its
    /// capacity bound. Returns the instance and whether the invocation is a
    /// cold start.
    pub fn try_begin(&mut self, at_ms: f64) -> Option<(InstanceId, bool)> {
        self.reap(at_ms);
        // Reuse the most recently released warm instance (LIFO, like Lambda).
        let mut best: Option<usize> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.is_idle() && slot.busy_until_ms <= at_ms {
                match best {
                    Some(b) if self.slots[b].last_release_ms >= slot.last_release_ms => {}
                    _ => best = Some(i),
                }
            }
        }
        if let Some(i) = best {
            self.wasted_idle_ms += at_ms - self.slots[i].last_release_ms;
            self.slots[i].busy_until_ms = f64::INFINITY;
            self.busy += 1;
            return Some((InstanceId(i), false));
        }
        if self.capacity.is_some_and(|cap| self.live >= cap) {
            return None;
        }
        self.slots.push(Slot {
            busy_until_ms: f64::INFINITY,
            last_release_ms: at_ms,
            ttl_ms: self.idle_ttl_ms,
            dead: false,
        });
        self.live += 1;
        self.busy += 1;
        Some((InstanceId(self.slots.len() - 1), true))
    }

    /// Acquires an instance for an invocation arriving at `at_ms`. Returns
    /// the instance and whether the invocation is a cold start.
    ///
    /// # Panics
    ///
    /// Panics if the pool has a capacity bound and it is exhausted — use
    /// [`WarmPool::try_begin`] for bounded pools.
    pub fn begin(&mut self, at_ms: f64) -> (InstanceId, bool) {
        self.try_begin(at_ms)
            // lint: allow(panic002) reason="documented # Panics contract: bounded pools must use try_begin"
            .expect("warm pool at capacity (use try_begin for bounded pools)")
    }

    /// Marks the instance free again at `finish_ms`, keeping the pool's
    /// default keep-alive window.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not currently busy.
    pub fn complete(&mut self, id: InstanceId, finish_ms: f64) {
        let ttl = self.idle_ttl_ms;
        self.complete_with_ttl(id, finish_ms, ttl);
    }

    /// Marks the instance free again at `finish_ms` with a per-instance
    /// keep-alive window of `ttl_ms` (a keep-alive policy's decision for
    /// this release). A zero TTL reclaims the instance immediately.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not currently busy or `ttl_ms` is negative.
    pub fn complete_with_ttl(&mut self, id: InstanceId, finish_ms: f64, ttl_ms: f64) {
        assert!(ttl_ms >= 0.0 && !ttl_ms.is_nan(), "TTL must be non-negative");
        let slot = &mut self.slots[id.0];
        assert!(slot.is_busy(), "instance completed twice");
        slot.busy_until_ms = finish_ms;
        slot.last_release_ms = finish_ms;
        slot.ttl_ms = ttl_ms;
        self.busy -= 1;
        if ttl_ms == 0.0 {
            slot.dead = true;
            self.live -= 1;
            self.expirations += 1;
        }
    }

    /// Evicts the least-recently released idle instance (to reclaim its
    /// memory for another pool on the same host), accruing its idle span as
    /// wasted time. Returns `false` when no instance is idle.
    pub fn evict_lru_idle(&mut self, now_ms: f64) -> bool {
        self.reap(now_ms);
        let lru = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_idle())
            .min_by(|(_, a), (_, b)| a.last_release_ms.total_cmp(&b.last_release_ms))
            .map(|(i, _)| i);
        match lru {
            Some(i) => {
                self.wasted_idle_ms += now_ms - self.slots[i].last_release_ms;
                self.slots[i].dead = true;
                self.live -= 1;
                self.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Evicts **every** idle instance at once, accruing their idle spans as
    /// wasted time, and returns how many were reclaimed. In-flight
    /// instances are left to finish (the caller stops reusing the pool).
    ///
    /// This is the memory-size-transition primitive: when a function is
    /// redeployed at a new size, warm instances of the old size cannot
    /// serve it — idle ones are reclaimed immediately and busy ones drain.
    pub fn retire_idle(&mut self, now_ms: f64) -> usize {
        self.reap(now_ms);
        let mut reclaimed = 0;
        for slot in &mut self.slots {
            if slot.is_idle() {
                self.wasted_idle_ms += now_ms - slot.last_release_ms;
                slot.dead = true;
                self.live -= 1;
                self.evictions += 1;
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// The release time of the least-recently released idle instance, if
    /// any — lets a host pick the globally best eviction victim.
    pub fn oldest_idle_release_ms(&mut self, now_ms: f64) -> Option<f64> {
        self.reap(now_ms);
        self.slots
            .iter()
            .filter(|s| s.is_idle())
            .map(|s| s.last_release_ms)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Reclaims every idle instance at the end of a run, accruing trailing
    /// idle time (clamped to each instance's TTL) as wasted time. In-flight
    /// instances are left untouched.
    pub fn finalize(&mut self, end_ms: f64) {
        for slot in &mut self.slots {
            if slot.is_idle() {
                slot.dead = true;
                self.live -= 1;
                self.expirations += 1;
                self.wasted_idle_ms += (end_ms - slot.last_release_ms).clamp(0.0, slot.ttl_ms);
            }
        }
    }

    /// Number of instances ever provisioned.
    pub fn provisioned(&self) -> usize {
        self.slots.len()
    }

    /// Number of live (warm or busy) instances as of `now_ms`.
    pub fn live_at(&mut self, now_ms: f64) -> usize {
        self.reap(now_ms);
        self.live
    }

    /// Number of instances currently executing an invocation.
    pub fn in_flight(&self) -> usize {
        self.busy
    }

    /// Number of warm instances available for reuse at `now_ms`.
    pub fn warm_idle_at(&mut self, now_ms: f64) -> usize {
        self.reap(now_ms);
        self.slots.iter().filter(|s| s.is_idle()).count()
    }

    /// Instances evicted to reclaim memory (capacity pressure).
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Instances reclaimed because their keep-alive window elapsed.
    pub fn expirations(&self) -> usize {
        self.expirations
    }

    /// Total warm-but-idle instance time accrued so far, ms. Multiplied by
    /// the instance memory size this is the "wasted memory-time" a
    /// keep-alive policy trades against cold starts.
    pub fn wasted_idle_ms(&self) -> f64 {
        self.wasted_idle_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pool_reuses_instances() {
        let mut pool = WarmPool::new(10_000.0);
        let (a, cold_a) = pool.begin(0.0);
        assert!(cold_a);
        pool.complete(a, 50.0);
        let (_b, cold_b) = pool.begin(100.0);
        assert!(!cold_b);
        assert_eq!(pool.provisioned(), 1);
    }

    #[test]
    fn warm_pool_scales_out_under_concurrency() {
        let mut pool = WarmPool::new(10_000.0);
        let (a, _) = pool.begin(0.0);
        let (b, cold_b) = pool.begin(1.0); // a still busy
        assert!(cold_b);
        pool.complete(a, 30.0);
        pool.complete(b, 31.0);
        assert_eq!(pool.provisioned(), 2);
    }

    #[test]
    fn warm_pool_expires_idle_instances() {
        let mut pool = WarmPool::new(1_000.0);
        let (a, _) = pool.begin(0.0);
        pool.complete(a, 10.0);
        let (_b, cold) = pool.begin(5_000.0); // idle 4990 ms > TTL
        assert!(cold);
        assert_eq!(pool.provisioned(), 2);
        assert_eq!(pool.expirations(), 1);
        // The expired instance wasted exactly its keep-alive window.
        assert_eq!(pool.wasted_idle_ms(), 1_000.0);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let mut pool = WarmPool::new(1_000.0);
        let (a, _) = pool.begin(0.0);
        pool.complete(a, 1.0);
        pool.complete(a, 2.0);
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut pool = WarmPool::with_capacity(10_000.0, 2);
        let (_a, _) = pool.try_begin(0.0).unwrap();
        let (_b, _) = pool.try_begin(1.0).unwrap();
        assert!(pool.try_begin(2.0).is_none(), "third concurrent instance");
        assert_eq!(pool.provisioned(), 2);
    }

    #[test]
    fn capacity_frees_after_expiry() {
        let mut pool = WarmPool::with_capacity(100.0, 1);
        let (a, _) = pool.try_begin(0.0).unwrap();
        pool.complete(a, 10.0);
        // TTL elapsed: the slot dies, so a fresh instance fits again.
        let (b, cold) = pool.try_begin(500.0).unwrap();
        assert!(cold);
        pool.complete(b, 510.0);
        assert_eq!(pool.expirations(), 1);
    }

    #[test]
    fn warm_reuse_accrues_idle_time() {
        let mut pool = WarmPool::new(10_000.0);
        let (a, _) = pool.begin(0.0);
        pool.complete(a, 100.0);
        let (_b, cold) = pool.begin(350.0);
        assert!(!cold);
        assert_eq!(pool.wasted_idle_ms(), 250.0);
    }

    #[test]
    fn zero_ttl_reclaims_immediately() {
        let mut pool = WarmPool::new(10_000.0);
        let (a, _) = pool.begin(0.0);
        pool.complete_with_ttl(a, 50.0, 0.0);
        let (_b, cold) = pool.begin(51.0);
        assert!(cold, "no-keepalive instance must not be reused");
        assert_eq!(pool.wasted_idle_ms(), 0.0);
    }

    #[test]
    fn eviction_prefers_lru_and_accounts_waste() {
        let mut pool = WarmPool::new(60_000.0);
        let (a, _) = pool.begin(0.0);
        let (b, _) = pool.begin(1.0);
        pool.complete(a, 100.0);
        pool.complete(b, 300.0);
        assert!(pool.evict_lru_idle(400.0));
        assert_eq!(pool.evictions(), 1);
        // Evicted the instance released at 100 ms → 300 ms idle wasted.
        assert_eq!(pool.wasted_idle_ms(), 300.0);
        // The remaining warm instance is the one released at 300 ms.
        let (_c, cold) = pool.begin(400.0);
        assert!(!cold);
    }

    #[test]
    fn retire_idle_reclaims_all_idle_but_leaves_busy() {
        let mut pool = WarmPool::new(60_000.0);
        let (a, _) = pool.begin(0.0);
        let (b, _) = pool.begin(0.0);
        let (_c, _) = pool.begin(0.0); // stays busy through the retirement
        pool.complete(a, 100.0);
        pool.complete(b, 200.0);
        assert_eq!(pool.retire_idle(300.0), 2);
        assert_eq!(pool.evictions(), 2);
        assert_eq!(pool.in_flight(), 1);
        assert_eq!(pool.live_at(300.0), 1);
        // Wasted: (300-100) + (300-200) ms of idle time.
        assert_eq!(pool.wasted_idle_ms(), 300.0);
        // Nothing idle left: a second retirement is a no-op.
        assert_eq!(pool.retire_idle(301.0), 0);
    }

    #[test]
    fn finalize_accrues_trailing_idle() {
        let mut pool = WarmPool::new(60_000.0);
        let (a, _) = pool.begin(0.0);
        pool.complete(a, 100.0);
        pool.finalize(1_100.0);
        assert_eq!(pool.wasted_idle_ms(), 1_000.0);
        assert_eq!(pool.live_at(1_100.0), 0);
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut pool = WarmPool::with_capacity(1_000.0, 4);
        let (a, _) = pool.try_begin(0.0).unwrap();
        let (b, _) = pool.try_begin(0.0).unwrap();
        assert_eq!(pool.in_flight(), 2);
        pool.complete(a, 10.0);
        assert_eq!(pool.in_flight(), 1);
        assert_eq!(pool.warm_idle_at(20.0), 1);
        assert_eq!(pool.live_at(20.0), 2);
        pool.complete(b, 30.0);
        assert_eq!(pool.live_at(5_000.0), 0);
        assert_eq!(pool.expirations(), 2);
    }
}
