//! The platform façade: execute profiles, bill invocations, manage warm
//! instances.

use crate::coldstart::ColdStartModel;
use crate::execution::{self, ExecutionOutcome, ResourceUsage};
use crate::function::FunctionConfig;
use crate::memory::MemorySize;
use crate::pricing::PricingModel;
use crate::resource::ResourceProfile;
use crate::scaling::ScalingLaws;
use crate::services::ServiceCatalog;
use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;

/// The simulated serverless platform (AWS-Lambda-like by default).
#[derive(Debug, Clone)]
pub struct Platform {
    laws: ScalingLaws,
    pricing: PricingModel,
    services: ServiceCatalog,
    cold_start: ColdStartModel,
}

/// One billed invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Name of the invoked function.
    pub function: String,
    /// Memory size it ran at.
    pub memory: MemorySize,
    /// Inner execution duration, ms.
    pub duration_ms: f64,
    /// Billed duration (rounded up to the billing increment), ms.
    pub billed_ms: f64,
    /// Cost of this invocation, USD.
    pub cost_usd: f64,
    /// Whether this invocation paid a cold start.
    pub cold_start: bool,
    /// Initialization time if cold, ms.
    pub init_ms: f64,
    /// Ground-truth resource usage.
    pub usage: ResourceUsage,
}

impl Platform {
    /// An AWS-Lambda-like platform.
    pub fn aws_like() -> Self {
        Platform {
            laws: ScalingLaws::aws_like(),
            pricing: PricingModel::aws(),
            services: ServiceCatalog::aws_like(),
            cold_start: ColdStartModel::aws_like(),
        }
    }

    /// A platform with custom components (for ablations and tests).
    pub fn new(
        laws: ScalingLaws,
        pricing: PricingModel,
        services: ServiceCatalog,
        cold_start: ColdStartModel,
    ) -> Self {
        Platform {
            laws,
            pricing,
            services,
            cold_start,
        }
    }

    /// The platform's scaling laws.
    pub fn laws(&self) -> &ScalingLaws {
        &self.laws
    }

    /// The platform's pricing model.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// The platform's service catalog.
    pub fn services(&self) -> &ServiceCatalog {
        &self.services
    }

    /// The platform's cold-start model.
    pub fn cold_start_model(&self) -> &ColdStartModel {
        &self.cold_start
    }

    /// Executes a profile at `memory` on a warm instance.
    pub fn execute(
        &self,
        profile: &ResourceProfile,
        memory: MemorySize,
        rng: &mut RngStream,
    ) -> ExecutionOutcome {
        execution::execute(profile, memory, &self.laws, &self.services, rng)
    }

    /// The expected (noise-free) duration of a profile at `memory` — the
    /// evaluation oracle.
    pub fn expected_duration_ms(&self, profile: &ResourceProfile, memory: MemorySize) -> f64 {
        execution::expected_duration_ms(profile, memory, &self.laws, &self.services)
    }

    /// Expected cost per execution at `memory`, USD.
    pub fn expected_cost_usd(&self, profile: &ResourceProfile, memory: MemorySize) -> f64 {
        self.pricing
            .cost_usd(self.expected_duration_ms(profile, memory), memory)
    }

    /// Runs one full invocation, optionally cold, and bills it.
    pub fn invoke(
        &self,
        config: &FunctionConfig,
        cold: bool,
        rng: &mut RngStream,
    ) -> InvocationRecord {
        let mut record = self.invoke_unnamed(config, cold, rng);
        record.function = config.name().to_string();
        record
    }

    /// [`Platform::invoke`] with the record's `function` name left empty.
    /// The fleet's dispatch loop already knows which function it invoked,
    /// so the hot path skips the per-invocation name allocation; every
    /// draw, duration, and billing figure is identical to `invoke`.
    pub fn invoke_unnamed(
        &self,
        config: &FunctionConfig,
        cold: bool,
        rng: &mut RngStream,
    ) -> InvocationRecord {
        self.invoke_unnamed_at(config, config.memory(), cold, rng)
    }

    /// [`Platform::invoke_unnamed`] running at `memory` instead of the
    /// config's deployed size — equivalent to invoking
    /// `config.with_memory(memory)` but without cloning the profile, for
    /// hot paths that redirect single invocations (shadow routing).
    pub fn invoke_unnamed_at(
        &self,
        config: &FunctionConfig,
        memory: MemorySize,
        cold: bool,
        rng: &mut RngStream,
    ) -> InvocationRecord {
        let mut outcome = self.execute(config.profile(), memory, rng);
        if cold {
            outcome.cold_start = true;
            outcome.init_ms =
                self.cold_start
                    .sample_init_ms(config.profile(), memory, &self.laws, rng);
        }
        let billed_ms = self.pricing.billed_ms(outcome.duration_ms);
        let cost_usd = self.pricing.cost_usd(outcome.duration_ms, memory);
        InvocationRecord {
            function: String::new(),
            memory,
            duration_ms: outcome.duration_ms,
            billed_ms,
            cost_usd,
            cold_start: outcome.cold_start,
            init_ms: outcome.init_ms,
            usage: outcome.usage,
        }
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::aws_like()
    }
}

// The instance model lived here historically; it moved to [`crate::pool`]
// so the fleet simulator and the measurement harness share one
// implementation. Re-exported for API stability.
pub use crate::pool::{InstanceId, WarmPool};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Stage;

    fn profile() -> ResourceProfile {
        ResourceProfile::builder("f")
            .stage(Stage::cpu("w", 40.0))
            .build()
    }

    #[test]
    fn invoke_bills_consistently() {
        let p = Platform::aws_like();
        let cfg = FunctionConfig::new(profile(), MemorySize::MB_512);
        let mut rng = RngStream::from_seed(1, "inv");
        let rec = p.invoke(&cfg, false, &mut rng);
        assert_eq!(rec.function, "f");
        assert!(rec.billed_ms >= rec.duration_ms);
        assert!(rec.cost_usd > 0.0);
        assert!(!rec.cold_start);
        assert_eq!(rec.init_ms, 0.0);
    }

    #[test]
    fn cold_invocation_has_init_time() {
        let p = Platform::aws_like();
        let cfg = FunctionConfig::new(profile(), MemorySize::MB_512);
        let mut rng = RngStream::from_seed(2, "inv-cold");
        let rec = p.invoke(&cfg, true, &mut rng);
        assert!(rec.cold_start);
        assert!(rec.init_ms > 100.0);
    }

    #[test]
    fn expected_cost_tracks_duration_and_memory() {
        let p = Platform::aws_like();
        let prof = profile();
        // For a CPU-bound function, 128→256 halves time at double rate: cost
        // roughly flat; 2048→3008 keeps time flat at a higher rate: cost up.
        let c2048 = p.expected_cost_usd(&prof, MemorySize::MB_2048);
        let c3008 = p.expected_cost_usd(&prof, MemorySize::MB_3008);
        assert!(c3008 > c2048);
    }

    #[test]
    fn warm_pool_reexport_still_resolves() {
        // API-stability guard for the pre-`pool`-module import path.
        let mut pool: WarmPool = super::WarmPool::new(10_000.0);
        let (a, cold) = pool.begin(0.0);
        assert!(cold);
        pool.complete(a, 50.0);
    }
}
