//! The platform façade: execute profiles, bill invocations, manage warm
//! instances.

use crate::coldstart::ColdStartModel;
use crate::execution::{self, ExecutionOutcome, ResourceUsage};
use crate::function::FunctionConfig;
use crate::memory::MemorySize;
use crate::pricing::PricingModel;
use crate::resource::ResourceProfile;
use crate::scaling::ScalingLaws;
use crate::services::ServiceCatalog;
use serde::{Deserialize, Serialize};
use sizeless_engine::RngStream;

/// The simulated serverless platform (AWS-Lambda-like by default).
#[derive(Debug, Clone)]
pub struct Platform {
    laws: ScalingLaws,
    pricing: PricingModel,
    services: ServiceCatalog,
    cold_start: ColdStartModel,
}

/// One billed invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Name of the invoked function.
    pub function: String,
    /// Memory size it ran at.
    pub memory: MemorySize,
    /// Inner execution duration, ms.
    pub duration_ms: f64,
    /// Billed duration (rounded up to the billing increment), ms.
    pub billed_ms: f64,
    /// Cost of this invocation, USD.
    pub cost_usd: f64,
    /// Whether this invocation paid a cold start.
    pub cold_start: bool,
    /// Initialization time if cold, ms.
    pub init_ms: f64,
    /// Ground-truth resource usage.
    pub usage: ResourceUsage,
}

impl Platform {
    /// An AWS-Lambda-like platform.
    pub fn aws_like() -> Self {
        Platform {
            laws: ScalingLaws::aws_like(),
            pricing: PricingModel::aws(),
            services: ServiceCatalog::aws_like(),
            cold_start: ColdStartModel::aws_like(),
        }
    }

    /// A platform with custom components (for ablations and tests).
    pub fn new(
        laws: ScalingLaws,
        pricing: PricingModel,
        services: ServiceCatalog,
        cold_start: ColdStartModel,
    ) -> Self {
        Platform {
            laws,
            pricing,
            services,
            cold_start,
        }
    }

    /// The platform's scaling laws.
    pub fn laws(&self) -> &ScalingLaws {
        &self.laws
    }

    /// The platform's pricing model.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// The platform's service catalog.
    pub fn services(&self) -> &ServiceCatalog {
        &self.services
    }

    /// The platform's cold-start model.
    pub fn cold_start_model(&self) -> &ColdStartModel {
        &self.cold_start
    }

    /// Executes a profile at `memory` on a warm instance.
    pub fn execute(
        &self,
        profile: &ResourceProfile,
        memory: MemorySize,
        rng: &mut RngStream,
    ) -> ExecutionOutcome {
        execution::execute(profile, memory, &self.laws, &self.services, rng)
    }

    /// The expected (noise-free) duration of a profile at `memory` — the
    /// evaluation oracle.
    pub fn expected_duration_ms(&self, profile: &ResourceProfile, memory: MemorySize) -> f64 {
        execution::expected_duration_ms(profile, memory, &self.laws, &self.services)
    }

    /// Expected cost per execution at `memory`, USD.
    pub fn expected_cost_usd(&self, profile: &ResourceProfile, memory: MemorySize) -> f64 {
        self.pricing
            .cost_usd(self.expected_duration_ms(profile, memory), memory)
    }

    /// Runs one full invocation, optionally cold, and bills it.
    pub fn invoke(
        &self,
        config: &FunctionConfig,
        cold: bool,
        rng: &mut RngStream,
    ) -> InvocationRecord {
        let mut outcome = self.execute(config.profile(), config.memory(), rng);
        if cold {
            outcome.cold_start = true;
            outcome.init_ms =
                self.cold_start
                    .sample_init_ms(config.profile(), config.memory(), &self.laws, rng);
        }
        let billed_ms = self.pricing.billed_ms(outcome.duration_ms);
        let cost_usd = self.pricing.cost_usd(outcome.duration_ms, config.memory());
        InvocationRecord {
            function: config.name().to_string(),
            memory: config.memory(),
            duration_ms: outcome.duration_ms,
            billed_ms,
            cost_usd,
            cold_start: outcome.cold_start,
            init_ms: outcome.init_ms,
            usage: outcome.usage,
        }
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::aws_like()
    }
}

/// A per-function pool of warm instances, deciding which invocations pay a
/// cold start. Instances are reclaimed after the cold-start model's idle TTL.
#[derive(Debug, Clone, Default)]
pub struct WarmPool {
    /// `(busy_until_ms, last_release_ms)` per instance.
    instances: Vec<(f64, f64)>,
    idle_ttl_ms: f64,
}

/// Identifies an acquired instance until [`WarmPool::complete`] is called.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceId(usize);

impl WarmPool {
    /// Creates a pool with the given idle TTL (ms).
    pub fn new(idle_ttl_ms: f64) -> Self {
        WarmPool {
            instances: Vec::new(),
            idle_ttl_ms,
        }
    }

    /// Acquires an instance for an invocation arriving at `at_ms`. Returns
    /// the instance and whether the invocation is a cold start.
    pub fn begin(&mut self, at_ms: f64) -> (InstanceId, bool) {
        // Reuse the most recently released warm instance (LIFO, like Lambda).
        let mut best: Option<usize> = None;
        for (i, &(busy_until, last_release)) in self.instances.iter().enumerate() {
            let idle_ok = at_ms - last_release <= self.idle_ttl_ms;
            if busy_until <= at_ms && idle_ok {
                match best {
                    Some(b) if self.instances[b].1 >= last_release => {}
                    _ => best = Some(i),
                }
            }
        }
        if let Some(i) = best {
            self.instances[i].0 = f64::INFINITY; // busy until completed
            (InstanceId(i), false)
        } else {
            self.instances.push((f64::INFINITY, at_ms));
            (InstanceId(self.instances.len() - 1), true)
        }
    }

    /// Marks the instance free again at `finish_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not currently busy.
    pub fn complete(&mut self, id: InstanceId, finish_ms: f64) {
        let inst = &mut self.instances[id.0];
        assert!(inst.0 == f64::INFINITY, "instance completed twice");
        inst.0 = finish_ms;
        inst.1 = finish_ms;
    }

    /// Number of instances ever provisioned.
    pub fn provisioned(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Stage;

    fn profile() -> ResourceProfile {
        ResourceProfile::builder("f")
            .stage(Stage::cpu("w", 40.0))
            .build()
    }

    #[test]
    fn invoke_bills_consistently() {
        let p = Platform::aws_like();
        let cfg = FunctionConfig::new(profile(), MemorySize::MB_512);
        let mut rng = RngStream::from_seed(1, "inv");
        let rec = p.invoke(&cfg, false, &mut rng);
        assert_eq!(rec.function, "f");
        assert!(rec.billed_ms >= rec.duration_ms);
        assert!(rec.cost_usd > 0.0);
        assert!(!rec.cold_start);
        assert_eq!(rec.init_ms, 0.0);
    }

    #[test]
    fn cold_invocation_has_init_time() {
        let p = Platform::aws_like();
        let cfg = FunctionConfig::new(profile(), MemorySize::MB_512);
        let mut rng = RngStream::from_seed(2, "inv-cold");
        let rec = p.invoke(&cfg, true, &mut rng);
        assert!(rec.cold_start);
        assert!(rec.init_ms > 100.0);
    }

    #[test]
    fn expected_cost_tracks_duration_and_memory() {
        let p = Platform::aws_like();
        let prof = profile();
        // For a CPU-bound function, 128→256 halves time at double rate: cost
        // roughly flat; 2048→3008 keeps time flat at a higher rate: cost up.
        let c2048 = p.expected_cost_usd(&prof, MemorySize::MB_2048);
        let c3008 = p.expected_cost_usd(&prof, MemorySize::MB_3008);
        assert!(c3008 > c2048);
    }

    #[test]
    fn warm_pool_reuses_instances() {
        let mut pool = WarmPool::new(10_000.0);
        let (a, cold_a) = pool.begin(0.0);
        assert!(cold_a);
        pool.complete(a, 50.0);
        let (_b, cold_b) = pool.begin(100.0);
        assert!(!cold_b);
        assert_eq!(pool.provisioned(), 1);
    }

    #[test]
    fn warm_pool_scales_out_under_concurrency() {
        let mut pool = WarmPool::new(10_000.0);
        let (a, _) = pool.begin(0.0);
        let (b, cold_b) = pool.begin(1.0); // a still busy
        assert!(cold_b);
        pool.complete(a, 30.0);
        pool.complete(b, 31.0);
        assert_eq!(pool.provisioned(), 2);
    }

    #[test]
    fn warm_pool_expires_idle_instances() {
        let mut pool = WarmPool::new(1_000.0);
        let (a, _) = pool.begin(0.0);
        pool.complete(a, 10.0);
        let (_b, cold) = pool.begin(5_000.0); // idle 4990 ms > TTL
        assert!(cold);
        assert_eq!(pool.provisioned(), 2);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let mut pool = WarmPool::new(1_000.0);
        let (a, _) = pool.begin(0.0);
        pool.complete(a, 1.0);
        pool.complete(a, 2.0);
    }
}
