//! Alternative provider presets.
//!
//! Figiela et al. (2018) and Back & Andrikopoulos (2018) — both cited by the
//! paper — measured that the memory-size/performance/cost relation differs
//! across providers: Google Cloud Functions priced GHz-seconds separately
//! and granted relatively more CPU to small sizes, IBM Cloud Functions gave
//! nearly flat CPU across sizes. The paper argues Sizeless transfers to
//! other platforms by regenerating the dataset; these presets make that
//! experiment runnable (see `examples/custom_platform.rs`).

use crate::coldstart::ColdStartModel;
use crate::platform::Platform;
use crate::pricing::PricingModel;
use crate::scaling::ScalingLaws;
use crate::services::ServiceCatalog;

/// A Google-Cloud-Functions-like platform (2020 era): CPU scales with
/// memory but tops out at ~1.4 GHz-equivalent already at 2048 MB, pricing
/// has a higher per-request charge and 100 ms rounding.
pub fn gcloud_like() -> Platform {
    let laws = ScalingLaws {
        mb_per_vcpu: 1400.0, // full share earlier than AWS
        io_bw_cap_mbps: 480.0,
        io_half_sat_mb: 800.0,
        net_bw_cap_mbps: 500.0,
        net_half_sat_mb: 2400.0,
        usable_memory_fraction: 0.88,
    };
    let pricing = PricingModel {
        gb_second_usd: 0.000_002_5 + 0.000_010_0, // GB-s + GHz-s folded together
        per_request_usd: 0.000_000_4,
        billing_increment_ms: 100.0,
    };
    let cold = ColdStartModel {
        provision_ms: 220.0,
        runtime_boot_ms: 120.0,
        sigma: 0.3,
        idle_ttl_ms: 15.0 * 60_000.0,
    };
    Platform::new(laws, pricing, ServiceCatalog::aws_like(), cold)
}

/// An IBM-Cloud-Functions-like platform (2018 era): Figiela et al. measured
/// an almost **flat** CPU allocation across memory sizes — memory size buys
/// headroom, not speed — which makes the smallest size optimal for nearly
/// every function.
pub fn ibm_like() -> Platform {
    let laws = ScalingLaws {
        // A tiny slope: 1 vCPU at 512 MB and capped quickly; below that the
        // share is already 0.8+ — sizes barely differ in speed.
        mb_per_vcpu: 160.0,
        io_bw_cap_mbps: 400.0,
        io_half_sat_mb: 300.0,
        net_bw_cap_mbps: 450.0,
        net_half_sat_mb: 900.0,
        usable_memory_fraction: 0.9,
    };
    let pricing = PricingModel {
        gb_second_usd: 0.000_017,
        per_request_usd: 0.0,
        billing_increment_ms: 100.0,
    };
    Platform::new(
        laws,
        pricing,
        ServiceCatalog::aws_like(),
        ColdStartModel::aws_like(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemorySize;
    use crate::resource::{ResourceProfile, Stage};

    fn cpu_profile() -> ResourceProfile {
        ResourceProfile::builder("provider-test")
            .stage(Stage::cpu("work", 200.0))
            .build()
    }

    #[test]
    fn gcloud_plateaus_earlier_than_aws() {
        let aws = Platform::aws_like();
        let gcp = gcloud_like();
        let p = cpu_profile();
        // At 1536 MB GCF already has a full share; AWS does not until 1792.
        let m = MemorySize::new(1536).unwrap();
        let aws_gain = aws.expected_duration_ms(&p, m)
            / aws.expected_duration_ms(&p, MemorySize::MB_2048);
        let gcp_gain = gcp.expected_duration_ms(&p, m)
            / gcp.expected_duration_ms(&p, MemorySize::MB_2048);
        assert!(gcp_gain < aws_gain, "gcp {gcp_gain:.3} vs aws {aws_gain:.3}");
    }

    #[test]
    fn ibm_cpu_is_nearly_flat_across_sizes() {
        let ibm = ibm_like();
        let p = cpu_profile();
        let t256 = ibm.expected_duration_ms(&p, MemorySize::MB_256);
        let t2048 = ibm.expected_duration_ms(&p, MemorySize::MB_2048);
        // Figiela et al.: IBM durations barely improve with memory.
        assert!(t256 / t2048 < 1.4, "{t256} vs {t2048}");
    }

    #[test]
    fn optimal_size_differs_between_providers() {
        use std::collections::BTreeMap;
        let p = cpu_profile();
        let choose = |platform: &Platform| {
            let times: BTreeMap<MemorySize, f64> = MemorySize::STANDARD
                .iter()
                .map(|&m| (m, platform.expected_duration_ms(&p, m)))
                .collect();
            // Pure-cost decision highlights the provider difference.
            times
                .iter()
                .map(|(&m, &t)| (m, platform.pricing().cost_usd(t, m)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty")
                .0
        };
        let aws_choice = choose(&Platform::aws_like());
        let ibm_choice = choose(&ibm_like());
        // On IBM nothing speeds up, so the smallest size is cheapest; on
        // AWS the CPU-bound function is cost-neutral-or-better at larger
        // sizes (throttle penalty).
        assert_eq!(ibm_choice, MemorySize::MB_128);
        assert!(aws_choice > ibm_choice, "aws {aws_choice} ibm {ibm_choice}");
    }

    #[test]
    fn provider_presets_have_sane_pricing() {
        for platform in [gcloud_like(), ibm_like()] {
            let cost = platform.pricing().cost_usd(1000.0, MemorySize::MB_1024);
            assert!(cost > 0.0 && cost < 0.001, "cost={cost}");
        }
    }
}
