//! A serverless platform simulator standing in for AWS Lambda.
//!
//! The Sizeless paper measures real Lambda functions; this crate reproduces
//! the *mechanism* the paper studies: a function's resources (CPU share, I/O
//! and network bandwidth) scale with the configured **memory size**, so its
//! execution time — and, through the GB-second pricing model, its cost — vary
//! with that single knob in function-specific ways.
//!
//! Key pieces:
//!
//! * [`memory`] — the [`MemorySize`] type and the six
//!   standard sizes of the paper's dataset (128 … 3008 MB).
//! * [`scaling`] — the resource-scaling laws: CPU share is linear in memory
//!   (1 full vCPU at 1792 MB, like Lambda), I/O and network bandwidth grow
//!   sub-linearly and saturate (Wang et al., ATC'18).
//! * [`pricing`] — the GB-second + per-request pricing model with AWS's
//!   published constants.
//! * [`resource`] — the ground-truth execution model: a function is a
//!   sequence of [`Stage`]s declaring CPU milliseconds,
//!   bytes of file/network I/O, managed-service calls, and a working-set
//!   size.
//! * [`services`] — latency models for the managed services the case studies
//!   use (DynamoDB, S3, SNS, SQS, Step Functions, API Gateway, Aurora,
//!   Rekognition, Kinesis, external HTTP APIs).
//! * [`execution`] — turns (profile, memory size) into an execution duration
//!   and a detailed [`ResourceUsage`] record that
//!   the telemetry crate converts into the paper's 25 monitoring metrics.
//! * [`coldstart`] — initialization-latency model.
//! * [`pool`] — the instance model: [`WarmPool`]s
//!   with keep-alive TTLs, capacity bounds, eviction, and wasted-idle-time
//!   accounting, shared by the measurement harness and the fleet simulator.
//! * [`platform`] — the façade: deploy a [`FunctionConfig`],
//!   invoke it, get an [`InvocationRecord`]
//!   (duration, billed duration, cost, cold-start flag, resource usage).
//!
//! # Examples
//!
//! ```
//! use sizeless_platform::prelude::*;
//! use sizeless_engine::RngStream;
//!
//! let profile = ResourceProfile::builder("cpu-heavy")
//!     .stage(Stage::cpu("invert-matrix", 120.0))
//!     .build();
//! let platform = Platform::aws_like();
//! let mut rng = RngStream::from_seed(1, "demo");
//!
//! let fast = platform.execute(&profile, MemorySize::MB_3008, &mut rng);
//! let slow = platform.execute(&profile, MemorySize::MB_128, &mut rng);
//! assert!(fast.duration_ms < slow.duration_ms);
//! ```

pub mod coldstart;
pub mod error;
pub mod execution;
pub mod function;
pub mod memory;
pub mod platform;
pub mod pool;
pub mod pricing;
pub mod providers;
pub mod resource;
pub mod scaling;
pub mod services;

/// Re-exports of the most used platform items.
pub mod prelude {
    pub use crate::coldstart::ColdStartModel;
    pub use crate::error::PlatformError;
    pub use crate::execution::{ExecutionOutcome, ResourceUsage};
    pub use crate::function::FunctionConfig;
    pub use crate::memory::MemorySize;
    pub use crate::platform::{InvocationRecord, Platform};
    pub use crate::pool::{InstanceId, WarmPool};
    pub use crate::pricing::PricingModel;
    pub use crate::resource::{ResourceProfile, ServiceCall, Stage};
    pub use crate::scaling::ScalingLaws;
    pub use crate::services::{ServiceCatalog, ServiceKind};
}

pub use error::PlatformError;
pub use execution::{ExecutionOutcome, ResourceUsage};
pub use function::FunctionConfig;
pub use memory::MemorySize;
pub use platform::{InvocationRecord, Platform};
pub use pool::{InstanceId, WarmPool};
pub use pricing::PricingModel;
pub use resource::{ResourceProfile, ServiceCall, Stage};
pub use services::{ServiceCatalog, ServiceKind};
