//! Latency models for managed services and external endpoints.
//!
//! Serverless applications spend much of their time in calls to managed
//! services. Crucially for the memory-sizing problem, the *server-side*
//! latency of these calls does not depend on the function's memory size —
//! only the data transfer does (through the memory-scaled network bandwidth).
//! This is what makes service-heavy functions like the paper's `API-Call`
//! barely benefit from larger memory sizes.

use crate::memory::MemorySize;
use crate::scaling::ScalingLaws;
use serde::{Deserialize, Serialize};
use sizeless_engine::dist::{Distribution, LogNormal};
use sizeless_engine::RngStream;
use std::collections::BTreeMap;
use std::fmt;

/// The managed services and external endpoints known to the simulator.
///
/// The first eight appear in the paper's synthetic function segments or case
/// studies; `Rekognition`, `Aurora`, `Sqs`, and `Kinesis` are *deliberately
/// absent from the synthetic segments* (Section 4 stresses that the case
/// studies use services the training set never saw).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[non_exhaustive]
pub enum ServiceKind {
    /// DynamoDB key-value store (used by segments and case studies).
    DynamoDb,
    /// S3 object storage.
    S3,
    /// SNS pub/sub topic.
    Sns,
    /// SQS queue.
    Sqs,
    /// Step Functions workflow transitions.
    StepFunctions,
    /// API Gateway hop.
    ApiGateway,
    /// Aurora serverless relational database.
    Aurora,
    /// Rekognition image analysis (slow ML inference).
    Rekognition,
    /// Kinesis stream.
    Kinesis,
    /// A generic external HTTP API on the public internet.
    ExternalApi,
    /// An external payment provider (slow third-party API).
    ExternalPayment,
}

impl ServiceKind {
    /// All service kinds.
    pub const ALL: [ServiceKind; 11] = [
        ServiceKind::DynamoDb,
        ServiceKind::S3,
        ServiceKind::Sns,
        ServiceKind::Sqs,
        ServiceKind::StepFunctions,
        ServiceKind::ApiGateway,
        ServiceKind::Aurora,
        ServiceKind::Rekognition,
        ServiceKind::Kinesis,
        ServiceKind::ExternalApi,
        ServiceKind::ExternalPayment,
    ];
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceKind::DynamoDb => "DynamoDB",
            ServiceKind::S3 => "S3",
            ServiceKind::Sns => "SNS",
            ServiceKind::Sqs => "SQS",
            ServiceKind::StepFunctions => "StepFunctions",
            ServiceKind::ApiGateway => "APIGateway",
            ServiceKind::Aurora => "Aurora",
            ServiceKind::Rekognition => "Rekognition",
            ServiceKind::Kinesis => "Kinesis",
            ServiceKind::ExternalApi => "ExternalAPI",
            ServiceKind::ExternalPayment => "ExternalPayment",
        };
        f.write_str(s)
    }
}

/// Latency model of a single service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Median server-side latency per call, ms.
    pub base_latency_ms: f64,
    /// Lognormal shape of the latency distribution.
    pub sigma: f64,
    /// Additional server-side processing per KB of payload, ms/KB.
    pub per_kb_ms: f64,
}

impl ServiceModel {
    /// Creates a service model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or `base_latency_ms` is zero.
    pub fn new(base_latency_ms: f64, sigma: f64, per_kb_ms: f64) -> Self {
        assert!(base_latency_ms > 0.0, "base latency must be positive");
        assert!(sigma >= 0.0 && per_kb_ms >= 0.0, "parameters must be non-negative");
        ServiceModel {
            base_latency_ms,
            sigma,
            per_kb_ms,
        }
    }

    /// Samples the server-side latency of one call with `payload_kb` of
    /// request + response payload (excludes client-side transfer time).
    pub fn sample_latency_ms(&self, payload_kb: f64, rng: &mut RngStream) -> f64 {
        let mean = self.base_latency_ms + self.per_kb_ms * payload_kb;
        LogNormal::with_mean(mean, self.sigma)
            // lint: allow(panic002) reason="latency parameters are validated positive at construction"
            .expect("validated at construction")
            .sample(rng)
    }

    /// The expected server-side latency for a payload.
    pub fn mean_latency_ms(&self, payload_kb: f64) -> f64 {
        self.base_latency_ms + self.per_kb_ms * payload_kb
    }
}

/// A registry of service models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCatalog {
    models: BTreeMap<ServiceKind, ServiceModel>,
}

impl ServiceCatalog {
    /// A catalog with AWS-like latencies for all known services.
    ///
    /// Values follow published measurements: single-digit ms for DynamoDB,
    /// tens of ms for S3/SNS/SQS, ~20 ms for in-region HTTP hops, hundreds
    /// of ms for Rekognition and external payment providers.
    pub fn aws_like() -> Self {
        let mut models = BTreeMap::new();
        models.insert(ServiceKind::DynamoDb, ServiceModel::new(4.0, 0.35, 0.02));
        models.insert(ServiceKind::S3, ServiceModel::new(22.0, 0.40, 0.015));
        models.insert(ServiceKind::Sns, ServiceModel::new(14.0, 0.35, 0.01));
        models.insert(ServiceKind::Sqs, ServiceModel::new(10.0, 0.35, 0.01));
        models.insert(
            ServiceKind::StepFunctions,
            ServiceModel::new(18.0, 0.40, 0.005),
        );
        models.insert(ServiceKind::ApiGateway, ServiceModel::new(8.0, 0.30, 0.005));
        models.insert(ServiceKind::Aurora, ServiceModel::new(6.0, 0.45, 0.03));
        models.insert(
            ServiceKind::Rekognition,
            ServiceModel::new(380.0, 0.30, 0.08),
        );
        models.insert(ServiceKind::Kinesis, ServiceModel::new(12.0, 0.35, 0.01));
        models.insert(
            ServiceKind::ExternalApi,
            ServiceModel::new(85.0, 0.45, 0.02),
        );
        models.insert(
            ServiceKind::ExternalPayment,
            ServiceModel::new(240.0, 0.50, 0.02),
        );
        ServiceCatalog { models }
    }

    /// The model for a service.
    ///
    /// # Panics
    ///
    /// Panics if the service is not in the catalog (the AWS-like catalog
    /// covers all kinds; custom catalogs must too).
    pub fn model(&self, kind: ServiceKind) -> &ServiceModel {
        self.models
            .get(&kind)
            .unwrap_or_else(|| panic!("service {kind} missing from catalog"))
    }

    /// Replaces the model for one service (builder-style customization).
    pub fn with_model(mut self, kind: ServiceKind, model: ServiceModel) -> Self {
        self.models.insert(kind, model);
        self
    }

    /// Total client-observed time for one service call at memory size `m`:
    /// server-side latency plus payload transfer at the memory-scaled
    /// network bandwidth.
    pub fn call_time_ms(
        &self,
        kind: ServiceKind,
        payload_kb: f64,
        m: MemorySize,
        laws: &ScalingLaws,
        rng: &mut RngStream,
    ) -> f64 {
        let server = self.model(kind).sample_latency_ms(payload_kb, rng);
        let transfer = transfer_time_ms(payload_kb, m, laws);
        server + transfer
    }
}

impl Default for ServiceCatalog {
    fn default() -> Self {
        Self::aws_like()
    }
}

/// Client-side transfer time for `payload_kb` at the memory-scaled network
/// bandwidth, in ms.
pub fn transfer_time_ms(payload_kb: f64, m: MemorySize, laws: &ScalingLaws) -> f64 {
    let mbps = laws.net_bandwidth_mbps(m);
    (payload_kb / 1024.0) / mbps * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_services() {
        let c = ServiceCatalog::aws_like();
        for kind in ServiceKind::ALL {
            let _ = c.model(kind); // must not panic
        }
    }

    #[test]
    fn dynamodb_is_fast_rekognition_is_slow() {
        let c = ServiceCatalog::aws_like();
        assert!(c.model(ServiceKind::DynamoDb).base_latency_ms < 10.0);
        assert!(c.model(ServiceKind::Rekognition).base_latency_ms > 100.0);
    }

    #[test]
    fn latency_sampling_is_positive_and_payload_sensitive() {
        let m = ServiceModel::new(10.0, 0.3, 0.1);
        let mut rng = RngStream::from_seed(1, "svc");
        let small: f64 = (0..2000).map(|_| m.sample_latency_ms(1.0, &mut rng)).sum();
        let large: f64 = (0..2000).map(|_| m.sample_latency_ms(500.0, &mut rng)).sum();
        assert!(small > 0.0);
        assert!(large / 2000.0 > small / 2000.0 + 30.0);
    }

    #[test]
    fn mean_latency_matches_sampled_mean() {
        let m = ServiceModel::new(20.0, 0.4, 0.0);
        let mut rng = RngStream::from_seed(2, "svc-mean");
        let n = 50_000;
        let avg: f64 =
            (0..n).map(|_| m.sample_latency_ms(0.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((avg - 20.0).abs() / 20.0 < 0.03, "avg={avg}");
    }

    #[test]
    fn server_latency_is_memory_independent_but_transfer_is_not() {
        let laws = ScalingLaws::aws_like();
        let t_small = transfer_time_ms(2048.0, MemorySize::MB_128, &laws);
        let t_large = transfer_time_ms(2048.0, MemorySize::MB_3008, &laws);
        assert!(t_small > t_large);
    }

    #[test]
    fn with_model_overrides() {
        let c = ServiceCatalog::aws_like()
            .with_model(ServiceKind::DynamoDb, ServiceModel::new(99.0, 0.1, 0.0));
        assert_eq!(c.model(ServiceKind::DynamoDb).base_latency_ms, 99.0);
    }

    #[test]
    fn call_time_includes_transfer() {
        let c = ServiceCatalog::aws_like();
        let laws = ScalingLaws::aws_like();
        let mut rng = RngStream::from_seed(3, "svc-call");
        let n = 5_000;
        let avg_128: f64 = (0..n)
            .map(|_| {
                c.call_time_ms(ServiceKind::S3, 4096.0, MemorySize::MB_128, &laws, &mut rng)
            })
            .sum::<f64>()
            / n as f64;
        let avg_3008: f64 = (0..n)
            .map(|_| {
                c.call_time_ms(ServiceKind::S3, 4096.0, MemorySize::MB_3008, &laws, &mut rng)
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            avg_128 > avg_3008 + 10.0,
            "large payloads transfer faster at bigger sizes: {avg_128} vs {avg_3008}"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_latency_rejected() {
        let _ = ServiceModel::new(0.0, 0.1, 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ServiceKind::DynamoDb.to_string(), "DynamoDB");
        assert_eq!(ServiceKind::ExternalPayment.to_string(), "ExternalPayment");
    }
}
