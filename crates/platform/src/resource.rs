//! The ground-truth execution model of a serverless function.
//!
//! A [`ResourceProfile`] describes *what a function does* independent of any
//! memory size: a sequence of [`Stage`]s, each declaring CPU milliseconds
//! (normalized to one vCPU), file-system and network traffic, managed-service
//! calls, idle waits, and a working-set footprint. The
//! [`execution`](crate::execution) module turns a profile plus a memory size
//! into a wall-clock duration and resource-usage record.
//!
//! Synthetic function segments ([`sizeless_funcgen`](https://docs.rs)) and
//! the case-study applications both compile down to profiles, so the whole
//! reproduction shares a single notion of "what the function is".

use crate::services::ServiceKind;
use serde::{Deserialize, Serialize};

/// One or more calls to a managed service within a stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCall {
    /// Which service is called.
    pub kind: ServiceKind,
    /// Number of sequential calls.
    pub calls: u32,
    /// Request + response payload per call, KB.
    pub payload_kb: f64,
}

impl ServiceCall {
    /// Creates a service-call description.
    ///
    /// # Panics
    ///
    /// Panics if `calls` is zero or `payload_kb` is negative.
    pub fn new(kind: ServiceKind, calls: u32, payload_kb: f64) -> Self {
        assert!(calls > 0, "a service call entry needs at least one call");
        assert!(payload_kb >= 0.0, "payload must be non-negative");
        ServiceCall {
            kind,
            calls,
            payload_kb,
        }
    }
}

/// A single sequential stage of a function's execution.
///
/// All CPU demand is expressed in milliseconds *at one full vCPU*; the
/// platform divides by the memory-dependent CPU speed. `parallelism` models
/// how many cores the stage can exploit (Node.js: 1.0 for plain JavaScript,
/// up to 4.0 for libuv-pool work such as crypto, zlib, or image codecs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Human-readable label (segment name).
    pub label: String,
    /// CPU demand in ms at 1 vCPU.
    pub cpu_ms: f64,
    /// Exploitable cores, ≥ 1.
    pub parallelism: f64,
    /// File-system bytes read, KB.
    pub io_read_kb: f64,
    /// File-system bytes written, KB.
    pub io_write_kb: f64,
    /// Network bytes received (outside service calls), KB.
    pub net_in_kb: f64,
    /// Network bytes transmitted (outside service calls), KB.
    pub net_out_kb: f64,
    /// Managed-service calls issued by this stage.
    pub service_calls: Vec<ServiceCall>,
    /// Pure waiting time (timers), ms.
    pub sleep_ms: f64,
    /// Peak additional working set while this stage runs, MB.
    pub working_set_mb: f64,
    /// Short-lived allocation churn, MB (drives GC/allocation metrics).
    pub alloc_churn_mb: f64,
}

impl Stage {
    /// A blank stage with the given label.
    pub fn named(label: impl Into<String>) -> Self {
        Stage {
            label: label.into(),
            cpu_ms: 0.0,
            parallelism: 1.0,
            io_read_kb: 0.0,
            io_write_kb: 0.0,
            net_in_kb: 0.0,
            net_out_kb: 0.0,
            service_calls: Vec::new(),
            sleep_ms: 0.0,
            working_set_mb: 0.0,
            alloc_churn_mb: 0.0,
        }
    }

    /// A single-threaded CPU stage.
    pub fn cpu(label: impl Into<String>, cpu_ms: f64) -> Self {
        Stage {
            cpu_ms,
            ..Stage::named(label)
        }
    }

    /// A CPU stage that can exploit `parallelism` cores.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism < 1`.
    pub fn cpu_parallel(label: impl Into<String>, cpu_ms: f64, parallelism: f64) -> Self {
        assert!(parallelism >= 1.0, "parallelism must be at least 1");
        Stage {
            cpu_ms,
            parallelism,
            ..Stage::named(label)
        }
    }

    /// A file-system stage reading and writing the given KB.
    pub fn file_io(label: impl Into<String>, read_kb: f64, write_kb: f64) -> Self {
        Stage {
            io_read_kb: read_kb,
            io_write_kb: write_kb,
            ..Stage::named(label)
        }
    }

    /// A raw network stage (e.g. downloading an asset).
    pub fn network(label: impl Into<String>, in_kb: f64, out_kb: f64) -> Self {
        Stage {
            net_in_kb: in_kb,
            net_out_kb: out_kb,
            ..Stage::named(label)
        }
    }

    /// A stage that issues managed-service calls.
    pub fn service(label: impl Into<String>, call: ServiceCall) -> Self {
        Stage {
            service_calls: vec![call],
            ..Stage::named(label)
        }
    }

    /// A pure wait (timer) stage.
    pub fn sleep(label: impl Into<String>, ms: f64) -> Self {
        Stage {
            sleep_ms: ms,
            ..Stage::named(label)
        }
    }

    /// Sets the stage's peak working set, returning `self` (builder-style).
    pub fn with_working_set(mut self, mb: f64) -> Self {
        assert!(mb >= 0.0, "working set must be non-negative");
        self.working_set_mb = mb;
        self
    }

    /// Sets allocation churn, returning `self`.
    pub fn with_alloc_churn(mut self, mb: f64) -> Self {
        assert!(mb >= 0.0, "allocation churn must be non-negative");
        self.alloc_churn_mb = mb;
        self
    }

    /// Adds CPU demand to an existing stage, returning `self`.
    pub fn with_cpu(mut self, cpu_ms: f64, parallelism: f64) -> Self {
        assert!(parallelism >= 1.0, "parallelism must be at least 1");
        self.cpu_ms = cpu_ms;
        self.parallelism = parallelism;
        self
    }

    /// Adds a service call to an existing stage, returning `self`.
    pub fn with_service_call(mut self, call: ServiceCall) -> Self {
        self.service_calls.push(call);
        self
    }

    /// Total service calls in this stage.
    pub fn total_service_calls(&self) -> u32 {
        self.service_calls.iter().map(|c| c.calls).sum()
    }
}

/// A complete function description: stages plus whole-function footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    name: String,
    stages: Vec<Stage>,
    /// Memory held by runtime + loaded code before any stage runs, MB.
    baseline_working_set_mb: f64,
    /// One-time initialization CPU (module load), ms at 1 vCPU — only paid
    /// on cold starts.
    init_cpu_ms: f64,
    /// Deployment package size, MB — affects cold-start load time.
    package_size_mb: f64,
}

impl ResourceProfile {
    /// Starts building a profile.
    pub fn builder(name: impl Into<String>) -> ResourceProfileBuilder {
        ResourceProfileBuilder {
            name: name.into(),
            stages: Vec::new(),
            baseline_working_set_mb: 42.0,
            init_cpu_ms: 45.0,
            package_size_mb: 2.5,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The execution stages in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Baseline working set (runtime + code), MB.
    pub fn baseline_working_set_mb(&self) -> f64 {
        self.baseline_working_set_mb
    }

    /// Cold-start initialization CPU, ms at 1 vCPU.
    pub fn init_cpu_ms(&self) -> f64 {
        self.init_cpu_ms
    }

    /// Deployment package size, MB.
    pub fn package_size_mb(&self) -> f64 {
        self.package_size_mb
    }

    /// Peak working set across stages plus baseline, MB.
    pub fn peak_working_set_mb(&self) -> f64 {
        let peak_stage = self
            .stages
            .iter()
            .map(|s| s.working_set_mb)
            .fold(0.0, f64::max);
        self.baseline_working_set_mb + peak_stage
    }

    /// Total CPU demand across stages, ms at 1 vCPU.
    pub fn total_cpu_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.cpu_ms).sum()
    }

    /// The smallest standard memory size that fits this profile's peak
    /// working set (functions must not OOM at their deployed size).
    pub fn min_viable_memory(&self) -> crate::memory::MemorySize {
        use crate::memory::MemorySize;
        let peak = self.peak_working_set_mb();
        for m in MemorySize::STANDARD {
            if peak <= m.mb() as f64 * 0.85 {
                return m;
            }
        }
        MemorySize::MAX
    }
}

/// Builder for [`ResourceProfile`].
#[derive(Debug, Clone)]
pub struct ResourceProfileBuilder {
    name: String,
    stages: Vec<Stage>,
    baseline_working_set_mb: f64,
    init_cpu_ms: f64,
    package_size_mb: f64,
}

impl ResourceProfileBuilder {
    /// Appends a stage.
    pub fn stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Appends several stages.
    pub fn stages(mut self, stages: impl IntoIterator<Item = Stage>) -> Self {
        self.stages.extend(stages);
        self
    }

    /// Sets the baseline working set, MB.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn baseline_working_set_mb(mut self, mb: f64) -> Self {
        assert!(mb >= 0.0, "baseline working set must be non-negative");
        self.baseline_working_set_mb = mb;
        self
    }

    /// Sets the cold-start initialization CPU, ms.
    pub fn init_cpu_ms(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0, "init cpu must be non-negative");
        self.init_cpu_ms = ms;
        self
    }

    /// Sets the deployment package size, MB.
    pub fn package_size_mb(mut self, mb: f64) -> Self {
        assert!(mb > 0.0, "package size must be positive");
        self.package_size_mb = mb;
        self
    }

    /// Finalizes the profile.
    pub fn build(self) -> ResourceProfile {
        ResourceProfile {
            name: self.name,
            stages: self.stages,
            baseline_working_set_mb: self.baseline_working_set_mb,
            init_cpu_ms: self.init_cpu_ms,
            package_size_mb: self.package_size_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemorySize;

    #[test]
    fn stage_constructors_set_expected_fields() {
        let s = Stage::cpu("work", 50.0);
        assert_eq!(s.cpu_ms, 50.0);
        assert_eq!(s.parallelism, 1.0);

        let p = Stage::cpu_parallel("zip", 80.0, 4.0);
        assert_eq!(p.parallelism, 4.0);

        let io = Stage::file_io("tmp", 128.0, 64.0);
        assert_eq!(io.io_read_kb, 128.0);
        assert_eq!(io.io_write_kb, 64.0);

        let n = Stage::network("download", 2048.0, 10.0);
        assert_eq!(n.net_in_kb, 2048.0);

        let sv = Stage::service("db", ServiceCall::new(ServiceKind::DynamoDb, 3, 4.0));
        assert_eq!(sv.total_service_calls(), 3);

        let sl = Stage::sleep("wait", 25.0);
        assert_eq!(sl.sleep_ms, 25.0);
    }

    #[test]
    fn stage_builder_style_modifiers() {
        let s = Stage::cpu("x", 10.0)
            .with_working_set(64.0)
            .with_alloc_churn(5.0)
            .with_service_call(ServiceCall::new(ServiceKind::S3, 1, 100.0));
        assert_eq!(s.working_set_mb, 64.0);
        assert_eq!(s.alloc_churn_mb, 5.0);
        assert_eq!(s.service_calls.len(), 1);
    }

    #[test]
    fn profile_aggregates() {
        let p = ResourceProfile::builder("f")
            .stage(Stage::cpu("a", 30.0).with_working_set(100.0))
            .stage(Stage::cpu("b", 20.0).with_working_set(40.0))
            .baseline_working_set_mb(20.0)
            .build();
        assert_eq!(p.total_cpu_ms(), 50.0);
        assert_eq!(p.peak_working_set_mb(), 120.0);
        assert_eq!(p.stages().len(), 2);
        assert_eq!(p.name(), "f");
    }

    #[test]
    fn min_viable_memory_respects_working_set() {
        let small = ResourceProfile::builder("small")
            .stage(Stage::cpu("a", 10.0).with_working_set(10.0))
            .build();
        assert_eq!(small.min_viable_memory(), MemorySize::MB_128);

        let big = ResourceProfile::builder("big")
            .stage(Stage::cpu("a", 10.0).with_working_set(700.0))
            .build();
        assert!(big.min_viable_memory() >= MemorySize::MB_1024);
    }

    #[test]
    fn builder_defaults_are_sane() {
        let p = ResourceProfile::builder("d").build();
        assert!(p.baseline_working_set_mb() > 0.0);
        assert!(p.init_cpu_ms() > 0.0);
        assert!(p.package_size_mb() > 0.0);
        assert!(p.stages().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one call")]
    fn zero_calls_rejected() {
        let _ = ServiceCall::new(ServiceKind::S3, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_parallelism_rejected() {
        let _ = Stage::cpu_parallel("bad", 10.0, 0.5);
    }
}
