//! Platform error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the platform simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// The requested memory size is not configurable on the platform.
    InvalidMemorySize {
        /// The rejected size in MB.
        mb: u32,
    },
    /// A function name was deployed twice.
    DuplicateFunction {
        /// The conflicting function name.
        name: String,
    },
    /// An invocation referenced an unknown function.
    UnknownFunction {
        /// The unknown function name.
        name: String,
    },
    /// The function's working set exceeds the configured memory size — the
    /// simulated equivalent of a Lambda out-of-memory kill.
    OutOfMemory {
        /// Working-set demand in MB.
        working_set_mb: f64,
        /// Configured memory size in MB.
        memory_mb: u32,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::InvalidMemorySize { mb } => write!(
                f,
                "invalid memory size {mb} MB (must be 128-3008 in 64 MB increments)"
            ),
            PlatformError::DuplicateFunction { name } => {
                write!(f, "function `{name}` is already deployed")
            }
            PlatformError::UnknownFunction { name } => {
                write!(f, "no function named `{name}` is deployed")
            }
            PlatformError::OutOfMemory {
                working_set_mb,
                memory_mb,
            } => write!(
                f,
                "working set of {working_set_mb:.1} MB exceeds memory size {memory_mb} MB"
            ),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PlatformError::InvalidMemorySize { mb: 100 };
        assert!(e.to_string().contains("100"));
        let e = PlatformError::UnknownFunction { name: "f".into() };
        assert!(e.to_string().contains('f'));
        let e = PlatformError::OutOfMemory {
            working_set_mb: 300.0,
            memory_mb: 128,
        };
        assert!(e.to_string().contains("128"));
    }
}
