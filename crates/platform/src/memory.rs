//! Memory sizes — the single resource-sizing knob of serverless functions.
//!
//! AWS Lambda (at the time of the paper) supported memory sizes from 128 MB
//! to 3008 MB in 64 MB increments; the paper's dataset uses the six sizes
//! {128, 256, 512, 1024, 2048, 3008}. [`MemorySize`] validates the increment
//! rule, and [`MemorySize::STANDARD`] exposes the paper's grid.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::PlatformError;

/// A validated Lambda memory size in megabytes.
///
/// # Examples
///
/// ```
/// use sizeless_platform::MemorySize;
///
/// let m = MemorySize::new(1024)?;
/// assert_eq!(m.mb(), 1024);
/// assert_eq!(m.gb(), 1.0);
/// assert!(MemorySize::new(100).is_err()); // not a 64 MB increment
/// # Ok::<(), sizeless_platform::PlatformError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MemorySize(u32);

impl MemorySize {
    /// 128 MB — the smallest (and default) Lambda size.
    pub const MB_128: MemorySize = MemorySize(128);
    /// 256 MB — the paper's preferred monitoring base size.
    pub const MB_256: MemorySize = MemorySize(256);
    /// 512 MB.
    pub const MB_512: MemorySize = MemorySize(512);
    /// 1024 MB.
    pub const MB_1024: MemorySize = MemorySize(1024);
    /// 2048 MB.
    pub const MB_2048: MemorySize = MemorySize(2048);
    /// 3008 MB — the largest size available at the time of the paper.
    pub const MB_3008: MemorySize = MemorySize(3008);

    /// The six memory sizes of the paper's dataset, ascending.
    pub const STANDARD: [MemorySize; 6] = [
        MemorySize::MB_128,
        MemorySize::MB_256,
        MemorySize::MB_512,
        MemorySize::MB_1024,
        MemorySize::MB_2048,
        MemorySize::MB_3008,
    ];

    /// Smallest configurable size (128 MB).
    pub const MIN: MemorySize = MemorySize(128);
    /// Largest configurable size (3008 MB).
    pub const MAX: MemorySize = MemorySize(3008);

    /// Creates a validated memory size.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidMemorySize`] unless
    /// `128 <= mb <= 3008` and `mb` is a multiple of 64 (the historical
    /// Lambda increments the paper's limitation section discusses; the
    /// 3008 MB maximum is itself on the 64 MB grid).
    pub fn new(mb: u32) -> Result<Self, PlatformError> {
        let valid = (128..=3008).contains(&mb) && mb.is_multiple_of(64);
        if valid {
            Ok(MemorySize(mb))
        } else {
            Err(PlatformError::InvalidMemorySize { mb })
        }
    }

    /// All configurable sizes in 64 MB increments (plus the 3008 cap),
    /// ascending — the grid the paper's limitation section mentions.
    pub fn all_increments() -> Vec<MemorySize> {
        let mut v: Vec<MemorySize> = (2..=46).map(|i| MemorySize(i * 64)).collect();
        v.push(MemorySize::MAX);
        v
    }

    /// The size in megabytes.
    pub fn mb(self) -> u32 {
        self.0
    }

    /// The size in gigabytes (used by GB-second pricing).
    pub fn gb(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// The index of this size within [`MemorySize::STANDARD`], if it is one
    /// of the six standard sizes.
    pub fn standard_index(self) -> Option<usize> {
        MemorySize::STANDARD.iter().position(|m| *m == self)
    }
}

impl fmt::Display for MemorySize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MB", self.0)
    }
}

impl TryFrom<u32> for MemorySize {
    type Error = PlatformError;
    fn try_from(mb: u32) -> Result<Self, Self::Error> {
        MemorySize::new(mb)
    }
}

impl From<MemorySize> for u32 {
    fn from(m: MemorySize) -> u32 {
        m.mb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_sizes_are_valid_and_sorted() {
        for pair in MemorySize::STANDARD.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        for m in MemorySize::STANDARD {
            assert_eq!(MemorySize::new(m.mb()).unwrap(), m);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(MemorySize::new(64).is_err());
        assert!(MemorySize::new(0).is_err());
        assert!(MemorySize::new(3072).is_err());
        assert!(MemorySize::new(4096).is_err());
    }

    #[test]
    fn rejects_non_increment() {
        assert!(MemorySize::new(100).is_err());
        assert!(MemorySize::new(129).is_err());
        // 3008 is not a multiple of 64 but is the documented maximum.
        assert!(MemorySize::new(3008).is_ok());
    }

    #[test]
    fn accepts_all_increments() {
        let all = MemorySize::all_increments();
        assert_eq!(all.first().unwrap().mb(), 128);
        assert_eq!(all.last().unwrap().mb(), 3008);
        // 128..=2944 in steps of 64 (45 values) + 3008.
        assert_eq!(all.len(), 46);
        for m in &all {
            assert!(MemorySize::new(m.mb()).is_ok());
        }
    }

    #[test]
    fn gb_conversion() {
        assert_eq!(MemorySize::MB_512.gb(), 0.5);
        assert_eq!(MemorySize::MB_1024.gb(), 1.0);
    }

    #[test]
    fn standard_index() {
        assert_eq!(MemorySize::MB_128.standard_index(), Some(0));
        assert_eq!(MemorySize::MB_3008.standard_index(), Some(5));
        assert_eq!(MemorySize::new(192).unwrap().standard_index(), None);
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(MemorySize::MB_256.to_string(), "256MB");
        assert_eq!(u32::from(MemorySize::MB_256), 256);
        assert_eq!(MemorySize::try_from(256u32).unwrap(), MemorySize::MB_256);
    }
}
