//! Deployed function configuration.

use crate::memory::MemorySize;
use crate::resource::ResourceProfile;
use serde::{Deserialize, Serialize};

/// A function as deployed on the platform: a resource profile plus the one
/// knob developers still control — the memory size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionConfig {
    profile: ResourceProfile,
    memory: MemorySize,
}

impl FunctionConfig {
    /// Creates a deployment configuration.
    pub fn new(profile: ResourceProfile, memory: MemorySize) -> Self {
        FunctionConfig { profile, memory }
    }

    /// The function's resource profile.
    pub fn profile(&self) -> &ResourceProfile {
        &self.profile
    }

    /// The configured memory size.
    pub fn memory(&self) -> MemorySize {
        self.memory
    }

    /// The function's name (delegates to the profile).
    pub fn name(&self) -> &str {
        self.profile.name()
    }

    /// Returns a copy deployed at a different memory size — the operation
    /// the Sizeless optimizer ultimately performs.
    pub fn with_memory(&self, memory: MemorySize) -> Self {
        FunctionConfig {
            profile: self.profile.clone(),
            memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Stage;

    #[test]
    fn with_memory_changes_only_memory() {
        let p = ResourceProfile::builder("f")
            .stage(Stage::cpu("w", 5.0))
            .build();
        let cfg = FunctionConfig::new(p.clone(), MemorySize::MB_128);
        let resized = cfg.with_memory(MemorySize::MB_1024);
        assert_eq!(resized.memory(), MemorySize::MB_1024);
        assert_eq!(resized.profile(), &p);
        assert_eq!(resized.name(), "f");
        assert_eq!(cfg.memory(), MemorySize::MB_128);
    }
}
