//! Resource-scaling laws: how CPU, I/O, and network capacity grow with the
//! configured memory size.
//!
//! These laws encode the published behaviour of AWS Lambda:
//!
//! * **CPU** — the CPU share grows linearly with memory; a function receives
//!   one full vCPU at 1792 MB and up to ~1.68 vCPU at 3008 MB. A
//!   single-threaded stage therefore stops speeding up past 1792 MB, while a
//!   parallel stage (Node.js libuv pool: crypto, zlib, image codecs) keeps
//!   scaling — this is what makes the paper's `PrimeNumbers` function scale
//!   super-linearly while `InvertMatrix` scales linearly and then plateaus.
//! * **I/O and network bandwidth** — grow with memory but saturate (Wang et
//!   al., ATC'18 measured exactly this), so network-bound functions like the
//!   paper's `API-Call` barely benefit from larger sizes.

use crate::memory::MemorySize;
use serde::{Deserialize, Serialize};

/// Memory at which a function receives exactly one vCPU, in MB (AWS value).
pub const FULL_VCPU_MB: f64 = 1792.0;

/// The scaling laws of the simulated platform.
///
/// The defaults model AWS Lambda circa 2020; tests and ablation benches can
/// construct variants (e.g. a provider whose CPU scales with a cap) to check
/// the approach is not AWS-specific.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingLaws {
    /// MB per full vCPU (1792 for AWS).
    pub mb_per_vcpu: f64,
    /// Maximum I/O bandwidth in MB/s reached at full saturation.
    pub io_bw_cap_mbps: f64,
    /// Memory size (MB) at which I/O bandwidth reaches half its cap.
    pub io_half_sat_mb: f64,
    /// Maximum network bandwidth in MB/s.
    pub net_bw_cap_mbps: f64,
    /// Memory size (MB) at which network bandwidth reaches half its cap.
    pub net_half_sat_mb: f64,
    /// Fraction of configured memory usable by the guest before memory
    /// pressure sets in (the runtime itself consumes the rest).
    pub usable_memory_fraction: f64,
}

impl ScalingLaws {
    /// AWS-Lambda-like defaults.
    ///
    /// I/O: ~80 MB/s at 128 MB rising towards ~550 MB/s; network: ~25 MB/s at
    /// 128 MB towards ~600 MB/s with later saturation, consistent with the
    /// measurements in Wang et al. (ATC'18).
    pub fn aws_like() -> Self {
        ScalingLaws {
            mb_per_vcpu: FULL_VCPU_MB,
            io_bw_cap_mbps: 550.0,
            io_half_sat_mb: 700.0,
            net_bw_cap_mbps: 600.0,
            net_half_sat_mb: 2900.0,
            usable_memory_fraction: 0.9,
        }
    }

    /// The fractional vCPU share allocated at memory size `m`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_platform::prelude::*;
    ///
    /// let laws = ScalingLaws::aws_like();
    /// assert!((laws.cpu_share(MemorySize::new(1792)?) - 1.0).abs() < 1e-12);
    /// assert!(laws.cpu_share(MemorySize::MB_128) < 0.1);
    /// # Ok::<(), sizeless_platform::PlatformError>(())
    /// ```
    pub fn cpu_share(&self, m: MemorySize) -> f64 {
        m.mb() as f64 / self.mb_per_vcpu
    }

    /// Effective speedup factor for a stage with intrinsic `parallelism`
    /// (1.0 = strictly single-threaded) at memory size `m`.
    ///
    /// A stage can never run faster than its parallelism allows, and never
    /// faster than the allocated share permits.
    pub fn cpu_speed(&self, m: MemorySize, parallelism: f64) -> f64 {
        debug_assert!(parallelism >= 1.0, "parallelism below 1 is meaningless");
        self.cpu_share(m).min(parallelism)
    }

    /// File-system I/O bandwidth in MB/s at memory size `m`
    /// (Michaelis–Menten-style saturation).
    pub fn io_bandwidth_mbps(&self, m: MemorySize) -> f64 {
        let mb = m.mb() as f64;
        self.io_bw_cap_mbps * mb / (mb + self.io_half_sat_mb)
    }

    /// Network bandwidth in MB/s at memory size `m`.
    pub fn net_bandwidth_mbps(&self, m: MemorySize) -> f64 {
        let mb = m.mb() as f64;
        self.net_bw_cap_mbps * mb / (mb + self.net_half_sat_mb)
    }

    /// CPU-demand inflation caused by CFS throttling when the allocated
    /// share is below the stage's exploitable parallelism.
    ///
    /// Throttled processes suffer cache eviction and scheduler overhead, so
    /// the same logical work consumes *more* CPU at small sizes. This is the
    /// mechanism behind the paper's observation that `PrimeNumbers` scales
    /// **super-linearly**: going from 128 MB to 2048 MB buys more than the
    /// 16× share increase, making the bigger size simultaneously faster and
    /// cheaper.
    pub fn throttle_penalty(&self, m: MemorySize, parallelism: f64) -> f64 {
        let share = self.cpu_share(m);
        if share >= parallelism {
            1.0
        } else {
            1.0 + 0.18 * (1.0 - share / parallelism)
        }
    }

    /// Memory usable by the function's working set at size `m`, in MB.
    pub fn usable_memory_mb(&self, m: MemorySize) -> f64 {
        m.mb() as f64 * self.usable_memory_fraction
    }

    /// Memory-pressure slowdown factor for a working set of `ws_mb` MB at
    /// size `m`: 1.0 while comfortably below the usable memory, rising
    /// steeply as the working set approaches it (GC thrash / swap behaviour).
    ///
    /// This reproduces the paper's partial-dependence finding that high
    /// *heap used* predicts larger speedups from added memory.
    pub fn memory_pressure_factor(&self, m: MemorySize, ws_mb: f64) -> f64 {
        let usable = self.usable_memory_mb(m);
        let occupancy = ws_mb / usable;
        if occupancy <= 0.6 {
            1.0
        } else {
            // Quadratic ramp: 1.0 at 60% occupancy, ~2.6 at 100%.
            1.0 + 10.0 * (occupancy - 0.6) * (occupancy - 0.6)
        }
    }
}

impl Default for ScalingLaws {
    fn default() -> Self {
        Self::aws_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws() -> ScalingLaws {
        ScalingLaws::aws_like()
    }

    #[test]
    fn cpu_share_linear_in_memory() {
        let l = laws();
        let s128 = l.cpu_share(MemorySize::MB_128);
        let s256 = l.cpu_share(MemorySize::MB_256);
        assert!((s256 / s128 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_vcpu_at_1792() {
        let l = laws();
        let m = MemorySize::new(1792).unwrap();
        assert!((l.cpu_share(m) - 1.0).abs() < 1e-12);
        assert!(l.cpu_share(MemorySize::MB_3008) > 1.5);
    }

    #[test]
    fn single_threaded_speed_plateaus_past_one_vcpu() {
        let l = laws();
        let at_2048 = l.cpu_speed(MemorySize::MB_2048, 1.0);
        let at_3008 = l.cpu_speed(MemorySize::MB_3008, 1.0);
        assert_eq!(at_2048, 1.0);
        assert_eq!(at_3008, 1.0);
    }

    #[test]
    fn parallel_stage_keeps_scaling() {
        let l = laws();
        let at_2048 = l.cpu_speed(MemorySize::MB_2048, 2.0);
        let at_3008 = l.cpu_speed(MemorySize::MB_3008, 2.0);
        assert!(at_3008 > at_2048);
    }

    #[test]
    fn io_bandwidth_monotone_and_saturating() {
        let l = laws();
        let mut prev = 0.0;
        for m in MemorySize::STANDARD {
            let bw = l.io_bandwidth_mbps(m);
            assert!(bw > prev);
            assert!(bw < l.io_bw_cap_mbps);
            prev = bw;
        }
        // Relative growth shrinks: saturation.
        let g1 = l.io_bandwidth_mbps(MemorySize::MB_256) / l.io_bandwidth_mbps(MemorySize::MB_128);
        let g2 =
            l.io_bandwidth_mbps(MemorySize::MB_3008) / l.io_bandwidth_mbps(MemorySize::MB_2048);
        assert!(g1 > g2);
    }

    #[test]
    fn net_bandwidth_monotone() {
        let l = laws();
        assert!(
            l.net_bandwidth_mbps(MemorySize::MB_3008) > l.net_bandwidth_mbps(MemorySize::MB_128)
        );
    }

    #[test]
    fn throttle_penalty_shrinks_with_memory() {
        let l = laws();
        let p128 = l.throttle_penalty(MemorySize::MB_128, 2.0);
        let p2048 = l.throttle_penalty(MemorySize::MB_2048, 2.0);
        assert!(p128 > p2048);
        assert!(p128 <= 1.18);
        // No penalty once the share covers the parallelism.
        assert_eq!(l.throttle_penalty(MemorySize::MB_2048, 1.0), 1.0);
    }

    #[test]
    fn throttle_penalty_makes_parallel_scaling_super_linear() {
        // Wall time ∝ penalty/share, so cost ∝ penalty·memory/share·const:
        // the penalty drop makes 2048 MB cheaper than 128 MB for parallel
        // work even though share scales exactly linearly.
        let l = laws();
        let cost_like = |m: MemorySize| {
            l.throttle_penalty(m, 2.2) / l.cpu_speed(m, 2.2) * m.mb() as f64
        };
        assert!(cost_like(MemorySize::MB_2048) < cost_like(MemorySize::MB_128));
    }

    #[test]
    fn memory_pressure_kicks_in_near_capacity() {
        let l = laws();
        let m = MemorySize::MB_128;
        assert_eq!(l.memory_pressure_factor(m, 10.0), 1.0);
        let near_full = l.usable_memory_mb(m) * 0.95;
        assert!(l.memory_pressure_factor(m, near_full) > 1.5);
        // Same working set at a larger size: no pressure.
        assert_eq!(l.memory_pressure_factor(MemorySize::MB_1024, near_full), 1.0);
    }

    #[test]
    fn pressure_is_monotone_in_working_set() {
        let l = laws();
        let m = MemorySize::MB_256;
        let mut prev = 0.0;
        for i in 1..=20 {
            let ws = i as f64 * 12.0;
            let p = l.memory_pressure_factor(m, ws);
            assert!(p >= prev);
            prev = p;
        }
    }
}
