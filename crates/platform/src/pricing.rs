//! The serverless pricing model.
//!
//! Cost per execution = `billed_seconds × memory_GB × gb_second_price +
//! per_request_charge`, with the billed duration rounded **up** to the
//! billing increment (100 ms on AWS at the time of the paper). The paper's
//! Section 2 example — 3 s at 512 MB costing $0.0000252 — is reproduced in
//! the tests below.

use crate::memory::MemorySize;
use serde::{Deserialize, Serialize};

/// A GB-second + per-request pricing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// Price per GB-second of compute, in USD ($0.00001667 on AWS).
    pub gb_second_usd: f64,
    /// Static per-request charge, in USD ($0.0000002 on AWS).
    pub per_request_usd: f64,
    /// Billing granularity in milliseconds (100 ms on AWS pre-2021).
    pub billing_increment_ms: f64,
}

impl PricingModel {
    /// AWS Lambda's published prices at the time of the paper.
    pub fn aws() -> Self {
        PricingModel {
            gb_second_usd: 0.000_016_67,
            per_request_usd: 0.000_000_2,
            billing_increment_ms: 100.0,
        }
    }

    /// A 1 ms-granularity variant (AWS moved to this in Dec 2020); used by
    /// ablation benches to study how billing granularity shifts the optimum.
    pub fn aws_1ms() -> Self {
        PricingModel {
            billing_increment_ms: 1.0,
            ..Self::aws()
        }
    }

    /// The billed duration for a raw execution duration, rounded up to the
    /// billing increment. Zero-duration executions still bill one increment.
    pub fn billed_ms(&self, duration_ms: f64) -> f64 {
        debug_assert!(duration_ms >= 0.0);
        let increments = (duration_ms / self.billing_increment_ms).ceil().max(1.0);
        increments * self.billing_increment_ms
    }

    /// The cost in USD of one execution of `duration_ms` at size `memory`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sizeless_platform::{MemorySize, PricingModel};
    ///
    /// // The paper's example: 3 s at 512 MB → $0.0000252.
    /// let cost = PricingModel::aws().cost_usd(3000.0, MemorySize::MB_512);
    /// assert!((cost - 0.0000252).abs() < 1e-8);
    /// ```
    pub fn cost_usd(&self, duration_ms: f64, memory: MemorySize) -> f64 {
        let billed_s = self.billed_ms(duration_ms) / 1000.0;
        billed_s * memory.gb() * self.gb_second_usd + self.per_request_usd
    }

    /// Cost in cents (the unit of the paper's Figure 1 axes).
    pub fn cost_cents(&self, duration_ms: f64, memory: MemorySize) -> f64 {
        self.cost_usd(duration_ms, memory) * 100.0
    }
}

impl Default for PricingModel {
    fn default() -> Self {
        Self::aws()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_cost() {
        // 3 s · 0.5 GB · $0.00001667 + $0.0000002 = $0.0000252.
        // Exact: 0.000025205; the paper reports the rounded 0.0000252.
        let cost = PricingModel::aws().cost_usd(3000.0, MemorySize::MB_512);
        assert!((cost - 0.000_025_2).abs() < 1e-8, "cost={cost}");
    }

    #[test]
    fn static_charge_fraction_matches_paper() {
        // The paper notes the static charge is 0.7% of that total.
        let p = PricingModel::aws();
        let cost = p.cost_usd(3000.0, MemorySize::MB_512);
        let frac = p.per_request_usd / cost;
        assert!((frac - 0.008).abs() < 0.002, "frac={frac}");
    }

    #[test]
    fn billed_duration_rounds_up() {
        let p = PricingModel::aws();
        assert_eq!(p.billed_ms(1.0), 100.0);
        assert_eq!(p.billed_ms(100.0), 100.0);
        assert_eq!(p.billed_ms(100.1), 200.0);
        assert_eq!(p.billed_ms(0.0), 100.0);
    }

    #[test]
    fn one_ms_granularity() {
        let p = PricingModel::aws_1ms();
        assert_eq!(p.billed_ms(42.3), 43.0);
    }

    #[test]
    fn cost_monotone_in_memory_for_fixed_duration() {
        let p = PricingModel::aws();
        let mut prev = 0.0;
        for m in MemorySize::STANDARD {
            let c = p.cost_usd(500.0, m);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn cents_conversion() {
        let p = PricingModel::aws();
        let usd = p.cost_usd(1000.0, MemorySize::MB_1024);
        assert!((p.cost_cents(1000.0, MemorySize::MB_1024) - usd * 100.0).abs() < 1e-15);
    }

    #[test]
    fn halving_time_while_doubling_memory_is_nearly_cost_neutral() {
        // The fundamental tradeoff of Section 2: GB-s cost stays constant if
        // execution time halves when memory doubles; only the rounding and
        // static charge differ.
        let p = PricingModel::aws_1ms();
        let c1 = p.cost_usd(1000.0, MemorySize::MB_256);
        let c2 = p.cost_usd(500.0, MemorySize::MB_512);
        assert!((c1 - c2).abs() / c1 < 0.01);
    }
}
