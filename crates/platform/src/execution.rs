//! Turning a [`ResourceProfile`] plus a [`MemorySize`] into a wall-clock
//! duration and a ground-truth [`ResourceUsage`] record.
//!
//! The execution semantics mirror a Node.js Lambda:
//!
//! * CPU demand is divided by the memory-scaled CPU speed — but the *reported*
//!   CPU time (`process.cpuUsage()`) is the demand itself, so the relative
//!   feature "user time per second of execution" measures CPU-boundedness,
//!   exactly the paper's most impactful feature (Figure 5).
//! * File and raw network traffic are served at memory-scaled bandwidths.
//! * Managed-service calls pay a memory-independent server latency plus a
//!   memory-scaled transfer time.
//! * A working set close to the configured memory triggers GC/swap pressure
//!   that inflates CPU time (the "heap used" effect of Figure 5).
//! * Long synchronous CPU stages block the event loop, producing the
//!   event-loop-lag metrics of Table 1.

use crate::memory::MemorySize;
use crate::resource::ResourceProfile;
use crate::scaling::ScalingLaws;
use crate::services::ServiceCatalog;
use serde::{Deserialize, Serialize};
use sizeless_engine::dist::{Distribution, LogNormal};
use sizeless_engine::RngStream;

/// Ground-truth resource consumption of one invocation.
///
/// Field names deliberately parallel the 25 metrics of the paper's Table 1;
/// the telemetry crate converts this record into the monitored metric vector
/// (adding measurement noise where the real collectors are noisy).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Inner execution time (what the paper's wrapper measures), ms.
    pub duration_ms: f64,
    /// CPU time spent in user space, ms (as `process.cpuUsage()` reports).
    pub user_cpu_ms: f64,
    /// CPU time spent in kernel space, ms.
    pub sys_cpu_ms: f64,
    /// Voluntary context switches (blocking I/O waits).
    pub vol_ctx_switches: f64,
    /// Involuntary context switches (CPU throttling, thread migration).
    pub invol_ctx_switches: f64,
    /// File-system read operations.
    pub fs_reads: f64,
    /// File-system write operations.
    pub fs_writes: f64,
    /// Bytes read from the file system, KB.
    pub fs_read_kb: f64,
    /// Bytes written to the file system, KB.
    pub fs_write_kb: f64,
    /// Resident set size, MB.
    pub rss_mb: f64,
    /// Peak resident set size, MB.
    pub max_rss_mb: f64,
    /// Total V8 heap, MB.
    pub heap_total_mb: f64,
    /// Used V8 heap, MB.
    pub heap_used_mb: f64,
    /// Physical heap size, MB.
    pub physical_heap_mb: f64,
    /// Available heap before the limit, MB.
    pub available_heap_mb: f64,
    /// Configured heap limit, MB (scales with the memory size).
    pub heap_limit_mb: f64,
    /// Memory allocated by the V8 allocator, MB.
    pub malloced_mb: f64,
    /// External (buffer) memory, MB.
    pub external_mb: f64,
    /// Bytecode + metadata size, KB.
    pub bytecode_metadata_kb: f64,
    /// Network bytes received, KB.
    pub net_rx_kb: f64,
    /// Network bytes transmitted, KB.
    pub net_tx_kb: f64,
    /// Network packets received.
    pub pkts_rx: f64,
    /// Network packets transmitted.
    pub pkts_tx: f64,
    /// Minimum event-loop lag, ms.
    pub loop_lag_min_ms: f64,
    /// Maximum event-loop lag, ms.
    pub loop_lag_max_ms: f64,
    /// Mean event-loop lag, ms.
    pub loop_lag_mean_ms: f64,
    /// Standard deviation of event-loop lag, ms.
    pub loop_lag_std_ms: f64,
}

/// The result of executing a profile at a memory size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionOutcome {
    /// Inner execution duration, ms.
    pub duration_ms: f64,
    /// Whether this execution paid a cold start (initialization happens
    /// *before* the inner duration, matching Lambda's billing of init).
    pub cold_start: bool,
    /// Initialization duration if cold, ms.
    pub init_ms: f64,
    /// Ground-truth resource usage.
    pub usage: ResourceUsage,
}

/// Multiplicative execution-time noise (σ of the lognormal). Cloud
/// measurements show a few percent of jitter on warm executions.
const DURATION_NOISE_SIGMA: f64 = 0.035;

/// Fraction of CPU demand attributed to user space (rest is system).
const USER_CPU_FRACTION: f64 = 0.93;

/// File-system block size assumed per I/O operation, KB.
const FS_BLOCK_KB: f64 = 16.0;

/// Ethernet-ish MTU used to derive packet counts, bytes.
const MTU_BYTES: f64 = 1460.0;

/// GC CPU cost per MB of allocation churn, ms/MB at one vCPU.
const GC_MS_PER_MB: f64 = 0.18;

/// Executes a profile at `memory` (warm path).
///
/// The returned duration includes sampled service latencies, platform
/// jitter, and lognormal noise, so repeated executions form realistic
/// distributions for the stability analysis.
pub fn execute(
    profile: &ResourceProfile,
    memory: MemorySize,
    laws: &ScalingLaws,
    services: &ServiceCatalog,
    rng: &mut RngStream,
) -> ExecutionOutcome {
    let mut usage = ResourceUsage::default();
    let peak_ws = profile.peak_working_set_mb();
    let pressure = laws.memory_pressure_factor(memory, peak_ws);

    let mut duration = 0.0;
    // Event-loop lag samples: at most one per stage, so a small stack
    // buffer covers every realistic profile and the per-invocation hot
    // path stays allocation-free. Profiles beyond LAG_INLINE stages spill
    // to the heap; iteration order (buffer then spill) matches the push
    // order, so every accumulated float is bit-identical to the old Vec.
    const LAG_INLINE: usize = 16;
    let mut lag_buf = [0.0_f64; LAG_INLINE];
    let mut lag_spill: Vec<f64> = Vec::new();
    let mut lag_n = 0_usize;
    let mut total_churn_mb = 0.0;

    for stage in profile.stages() {
        let speed = laws.cpu_speed(memory, stage.parallelism);

        // GC work grows with allocation churn and memory pressure; CFS
        // throttling at small shares inflates the demand further.
        let throttle = laws.throttle_penalty(memory, stage.parallelism);
        let gc_cpu_ms = stage.alloc_churn_mb * GC_MS_PER_MB * pressure;
        let cpu_demand_ms = (stage.cpu_ms * pressure + gc_cpu_ms) * throttle;
        let cpu_wall_ms = cpu_demand_ms / speed;

        let io_kb = stage.io_read_kb + stage.io_write_kb;
        let io_ms = (io_kb / 1024.0) / laws.io_bandwidth_mbps(memory) * 1000.0;

        let net_kb = stage.net_in_kb + stage.net_out_kb;
        let mut net_ms = (net_kb / 1024.0) / laws.net_bandwidth_mbps(memory) * 1000.0;
        if net_kb > 0.0 {
            net_ms += 1.2; // connection/RTT overhead per raw-network stage
        }

        let mut svc_ms = 0.0;
        for call in &stage.service_calls {
            for _ in 0..call.calls {
                svc_ms +=
                    services.call_time_ms(call.kind, call.payload_kb, memory, laws, rng);
            }
            // Service payloads flow over the function's NIC (half each way).
            usage.net_rx_kb += call.calls as f64 * call.payload_kb * 0.5;
            usage.net_tx_kb += call.calls as f64 * call.payload_kb * 0.5;
        }

        duration += cpu_wall_ms + io_ms + net_ms + svc_ms + stage.sleep_ms;

        usage.user_cpu_ms += USER_CPU_FRACTION * cpu_demand_ms;
        usage.sys_cpu_ms += (1.0 - USER_CPU_FRACTION) * cpu_demand_ms
            + 0.002 * io_kb
            + 0.004 * (net_kb + usage.net_rx_kb * 0.0); // io/net syscall time

        usage.fs_read_kb += stage.io_read_kb;
        usage.fs_write_kb += stage.io_write_kb;
        usage.fs_reads += (stage.io_read_kb / FS_BLOCK_KB).ceil();
        usage.fs_writes += (stage.io_write_kb / FS_BLOCK_KB).ceil();

        usage.net_rx_kb += stage.net_in_kb;
        usage.net_tx_kb += stage.net_out_kb;

        // Voluntary switches: every blocking wait yields the CPU, and
        // libuv-pool work adds task handoffs proportional to the parallel
        // CPU demand — this is how thread-pool parallelism shows up in the
        // monitored metrics (the paper's model sees voluntary context
        // switches among its six final metrics).
        let io_ops = (stage.io_read_kb / FS_BLOCK_KB).ceil() + (stage.io_write_kb / FS_BLOCK_KB).ceil();
        let svc_calls = stage.total_service_calls() as f64;
        let sleeps = if stage.sleep_ms > 0.0 { 1.0 } else { 0.0 };
        usage.vol_ctx_switches += io_ops + 2.0 * svc_calls + sleeps;
        if stage.parallelism > 1.0 {
            usage.vol_ctx_switches += 0.8 * cpu_demand_ms * (stage.parallelism - 1.0);
            // Thread coordination costs kernel time too.
            usage.sys_cpu_ms += 0.015 * cpu_demand_ms * (stage.parallelism - 1.0);
        }

        // Involuntary switches: CFS throttling while the share is below the
        // stage's exploitable parallelism, plus thread migration for
        // libuv-pool work.
        let throttled = laws.cpu_share(memory) < stage.parallelism;
        let quantum_ms = if throttled { 4.0 } else { 40.0 };
        usage.invol_ctx_switches += cpu_wall_ms / quantum_ms;
        if stage.parallelism > 1.0 {
            usage.invol_ctx_switches += cpu_wall_ms * (stage.parallelism - 1.0) / 25.0;
        }

        // A synchronous CPU stage blocks the event loop for its wall time.
        if cpu_wall_ms > 0.0 {
            let lag = cpu_wall_ms / stage.parallelism.max(1.0);
            if lag_n < LAG_INLINE {
                lag_buf[lag_n] = lag;
            } else {
                lag_spill.push(lag);
            }
            lag_n += 1;
        }
        total_churn_mb += stage.alloc_churn_mb;
    }

    // Baseline syscalls of the handler itself.
    usage.vol_ctx_switches += 3.0;

    // Platform jitter and multiplicative noise on the wall clock.
    let noise = LogNormal::with_mean(1.0, DURATION_NOISE_SIGMA)
        // lint: allow(panic002) reason="mean and sigma are fixed positive constants, so the distribution is valid"
        .expect("constant sigma is valid")
        .sample(rng);
    let jitter_ms = 0.4 + 0.6 * rng.next_f64();
    duration = duration * noise + jitter_ms;

    // --- Memory picture -------------------------------------------------
    // Peak working set includes the baseline; only ~55% of the runtime
    // baseline lives on the V8 heap (the rest is native).
    let heap_used = (peak_ws - 0.45 * profile.baseline_working_set_mb()).max(4.0);
    let heap_total = heap_used * 1.28 + 6.0;
    // Node on Lambda sizes its old space from the cgroup memory limit.
    let heap_limit = (memory.mb() as f64 * 0.75).max(64.0);
    let external = 2.0 + 0.0006 * (usage.net_rx_kb + usage.net_tx_kb + usage.fs_read_kb);
    usage.heap_used_mb = heap_used;
    usage.heap_total_mb = heap_total;
    usage.physical_heap_mb = heap_total * 0.97;
    usage.heap_limit_mb = heap_limit;
    usage.available_heap_mb = (heap_limit - heap_used).max(0.0);
    usage.malloced_mb = heap_total + external * 0.5;
    usage.external_mb = external;
    usage.rss_mb = heap_total + external + 30.0;
    usage.max_rss_mb = usage.rss_mb * 1.05 + total_churn_mb * 0.15;
    usage.bytecode_metadata_kb = 170.0 + profile.package_size_mb() * 85.0;

    // --- Packets ---------------------------------------------------------
    usage.pkts_rx = (usage.net_rx_kb * 1024.0 / MTU_BYTES).ceil() + 4.0;
    usage.pkts_tx = (usage.net_tx_kb * 1024.0 / MTU_BYTES).ceil() + 4.0;

    // --- Event-loop lag ---------------------------------------------------
    if lag_n == 0 {
        // lint: allow(panic003) reason="lag_buf is a fixed [f64; LAG_INLINE] array with LAG_INLINE = 16, so index 0 always exists"
        lag_buf[0] = 0.02 + 0.03 * rng.next_f64();
        lag_n = 1;
    }
    let lag_samples = || lag_buf[..lag_n.min(LAG_INLINE)].iter().chain(lag_spill.iter());
    let n = lag_n as f64;
    let mean = lag_samples().sum::<f64>() / n;
    let var = lag_samples().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
    usage.loop_lag_min_ms = lag_samples().cloned().fold(f64::INFINITY, f64::min);
    usage.loop_lag_max_ms = lag_samples().cloned().fold(0.0, f64::max);
    usage.loop_lag_mean_ms = mean;
    usage.loop_lag_std_ms = var.sqrt();

    usage.duration_ms = duration;

    ExecutionOutcome {
        duration_ms: duration,
        cold_start: false,
        init_ms: 0.0,
        usage,
    }
}

/// The expected (noise-free) execution time at a memory size. Used by tests
/// and by the "measured ground truth" oracle in the evaluation harness.
pub fn expected_duration_ms(
    profile: &ResourceProfile,
    memory: MemorySize,
    laws: &ScalingLaws,
    services: &ServiceCatalog,
) -> f64 {
    let peak_ws = profile.peak_working_set_mb();
    let pressure = laws.memory_pressure_factor(memory, peak_ws);
    let mut duration = 0.0;
    for stage in profile.stages() {
        let speed = laws.cpu_speed(memory, stage.parallelism);
        let throttle = laws.throttle_penalty(memory, stage.parallelism);
        let gc_cpu_ms = stage.alloc_churn_mb * GC_MS_PER_MB * pressure;
        duration += (stage.cpu_ms * pressure + gc_cpu_ms) * throttle / speed;
        let io_kb = stage.io_read_kb + stage.io_write_kb;
        duration += (io_kb / 1024.0) / laws.io_bandwidth_mbps(memory) * 1000.0;
        let net_kb = stage.net_in_kb + stage.net_out_kb;
        duration += (net_kb / 1024.0) / laws.net_bandwidth_mbps(memory) * 1000.0;
        if net_kb > 0.0 {
            duration += 1.2;
        }
        for call in &stage.service_calls {
            duration += call.calls as f64
                * (services.model(call.kind).mean_latency_ms(call.payload_kb)
                    + crate::services::transfer_time_ms(call.payload_kb, memory, laws));
        }
        duration += stage.sleep_ms;
    }
    duration + 0.7 // mean jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{ServiceCall, Stage};
    use crate::services::ServiceKind;

    fn setup() -> (ScalingLaws, ServiceCatalog, RngStream) {
        (
            ScalingLaws::aws_like(),
            ServiceCatalog::aws_like(),
            RngStream::from_seed(7, "exec-test"),
        )
    }

    fn cpu_profile(ms: f64) -> ResourceProfile {
        ResourceProfile::builder("cpu")
            .stage(Stage::cpu("work", ms))
            .build()
    }

    #[test]
    fn cpu_bound_scales_inverse_linearly_until_one_vcpu() {
        let (laws, svc, _) = setup();
        let p = cpu_profile(200.0);
        let d128 = expected_duration_ms(&p, MemorySize::MB_128, &laws, &svc);
        let d256 = expected_duration_ms(&p, MemorySize::MB_256, &laws, &svc);
        let d1024 = expected_duration_ms(&p, MemorySize::MB_1024, &laws, &svc);
        assert!((d128 / d256 - 2.0).abs() < 0.05, "{d128} vs {d256}");
        assert!(d256 / d1024 > 3.5);
    }

    #[test]
    fn single_threaded_plateaus_past_1792() {
        let (laws, svc, _) = setup();
        let p = cpu_profile(200.0);
        let d2048 = expected_duration_ms(&p, MemorySize::MB_2048, &laws, &svc);
        let d3008 = expected_duration_ms(&p, MemorySize::MB_3008, &laws, &svc);
        assert!((d2048 - d3008).abs() < 1.0, "{d2048} vs {d3008}");
    }

    #[test]
    fn parallel_cpu_keeps_scaling_past_1792() {
        let (laws, svc, _) = setup();
        let p = ResourceProfile::builder("par")
            .stage(Stage::cpu_parallel("zip", 200.0, 2.0))
            .build();
        let d2048 = expected_duration_ms(&p, MemorySize::MB_2048, &laws, &svc);
        let d3008 = expected_duration_ms(&p, MemorySize::MB_3008, &laws, &svc);
        assert!(d3008 < d2048 * 0.8, "{d3008} vs {d2048}");
    }

    #[test]
    fn service_bound_function_is_memory_insensitive() {
        let (laws, svc, _) = setup();
        let p = ResourceProfile::builder("api")
            .stage(Stage::service(
                "call",
                ServiceCall::new(ServiceKind::ExternalApi, 1, 2.0),
            ))
            .build();
        let d128 = expected_duration_ms(&p, MemorySize::MB_128, &laws, &svc);
        let d3008 = expected_duration_ms(&p, MemorySize::MB_3008, &laws, &svc);
        assert!((d128 - d3008) / d128 < 0.05, "{d128} vs {d3008}");
    }

    #[test]
    fn memory_pressure_inflates_small_sizes() {
        let (laws, svc, _) = setup();
        let p = ResourceProfile::builder("hungry")
            .stage(Stage::cpu("work", 100.0).with_working_set(95.0))
            .build();
        // At 128 MB the 95 MB working set is ~83% of usable memory.
        let d128 = expected_duration_ms(&p, MemorySize::MB_128, &laws, &svc);
        let no_pressure = cpu_profile(100.0);
        let base128 = expected_duration_ms(&no_pressure, MemorySize::MB_128, &laws, &svc);
        assert!(d128 > base128 * 1.2, "{d128} vs {base128}");
    }

    #[test]
    fn execute_matches_expected_on_average() {
        let (laws, svc, mut rng) = setup();
        let p = ResourceProfile::builder("mix")
            .stage(Stage::cpu("a", 50.0))
            .stage(Stage::file_io("b", 256.0, 128.0))
            .stage(Stage::service(
                "c",
                ServiceCall::new(ServiceKind::DynamoDb, 3, 4.0),
            ))
            .build();
        let expected = expected_duration_ms(&p, MemorySize::MB_512, &laws, &svc);
        let n = 3000;
        let avg: f64 = (0..n)
            .map(|_| execute(&p, MemorySize::MB_512, &laws, &svc, &mut rng).duration_ms)
            .sum::<f64>()
            / n as f64;
        assert!((avg - expected).abs() / expected < 0.05, "avg={avg} expected={expected}");
    }

    #[test]
    fn cpu_metrics_report_demand_not_wall_time() {
        let (laws, svc, mut rng) = setup();
        let p = cpu_profile(100.0);
        let out = execute(&p, MemorySize::MB_128, &laws, &svc, &mut rng);
        let total_cpu = out.usage.user_cpu_ms + out.usage.sys_cpu_ms;
        // Demand is ~100 ms (plus the ≤18% throttling inflation), nowhere
        // near the 14×-slowed wall time at 128 MB.
        assert!((95.0..125.0).contains(&total_cpu), "cpu={total_cpu}");
        assert!(out.duration_ms > 1000.0);
    }

    #[test]
    fn io_counters_reflect_traffic() {
        let (laws, svc, mut rng) = setup();
        let p = ResourceProfile::builder("io")
            .stage(Stage::file_io("rw", 160.0, 80.0))
            .build();
        let out = execute(&p, MemorySize::MB_256, &laws, &svc, &mut rng);
        assert_eq!(out.usage.fs_read_kb, 160.0);
        assert_eq!(out.usage.fs_write_kb, 80.0);
        assert_eq!(out.usage.fs_reads, 10.0);
        assert_eq!(out.usage.fs_writes, 5.0);
        assert!(out.usage.vol_ctx_switches >= 15.0);
    }

    #[test]
    fn network_counters_include_service_payloads() {
        let (laws, svc, mut rng) = setup();
        let p = ResourceProfile::builder("net")
            .stage(Stage::service(
                "s3",
                ServiceCall::new(ServiceKind::S3, 2, 100.0),
            ))
            .build();
        let out = execute(&p, MemorySize::MB_256, &laws, &svc, &mut rng);
        assert!((out.usage.net_rx_kb - 100.0).abs() < 1e-9);
        assert!((out.usage.net_tx_kb - 100.0).abs() < 1e-9);
        assert!(out.usage.pkts_rx > 60.0);
    }

    #[test]
    fn heap_limit_scales_with_memory() {
        let (laws, svc, mut rng) = setup();
        let p = cpu_profile(10.0);
        let small = execute(&p, MemorySize::MB_128, &laws, &svc, &mut rng);
        let large = execute(&p, MemorySize::MB_3008, &laws, &svc, &mut rng);
        assert!(large.usage.heap_limit_mb > small.usage.heap_limit_mb * 10.0);
        assert!(large.usage.available_heap_mb > small.usage.available_heap_mb);
    }

    #[test]
    fn event_loop_lag_tracks_cpu_blocks() {
        let (laws, svc, mut rng) = setup();
        let cpu_heavy = execute(&cpu_profile(500.0), MemorySize::MB_256, &laws, &svc, &mut rng);
        let idle = execute(
            &ResourceProfile::builder("idle")
                .stage(Stage::sleep("wait", 100.0))
                .build(),
            MemorySize::MB_256,
            &laws,
            &svc,
            &mut rng,
        );
        assert!(cpu_heavy.usage.loop_lag_max_ms > 100.0);
        assert!(idle.usage.loop_lag_max_ms < 1.0);
    }

    #[test]
    fn involuntary_switches_higher_when_throttled() {
        let (laws, svc, mut rng) = setup();
        let p = cpu_profile(200.0);
        let throttled = execute(&p, MemorySize::MB_128, &laws, &svc, &mut rng);
        let unthrottled = execute(&p, MemorySize::MB_2048, &laws, &svc, &mut rng);
        assert!(
            throttled.usage.invol_ctx_switches > 10.0 * unthrottled.usage.invol_ctx_switches
        );
    }

    #[test]
    fn durations_are_noisy_but_positive() {
        let (laws, svc, mut rng) = setup();
        let p = cpu_profile(20.0);
        let d: Vec<f64> = (0..100)
            .map(|_| execute(&p, MemorySize::MB_1024, &laws, &svc, &mut rng).duration_ms)
            .collect();
        assert!(d.iter().all(|&x| x > 0.0));
        let distinct: std::collections::BTreeSet<u64> =
            d.iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 90, "noise should make durations distinct");
    }
}
