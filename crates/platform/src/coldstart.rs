//! Cold-start (initialization) latency model.
//!
//! A cold start pays for: sandbox provisioning, deployment-package load
//! (scales with package size and the memory-scaled I/O bandwidth), runtime
//! boot, and the function's own module-initialization CPU (scaled by the
//! memory-dependent CPU speed). Wang et al. (ATC'18) observed cold-start
//! times shrinking with memory size — this model reproduces that.

use crate::memory::MemorySize;
use crate::resource::ResourceProfile;
use crate::scaling::ScalingLaws;
use serde::{Deserialize, Serialize};
use sizeless_engine::dist::{Distribution, LogNormal};
use sizeless_engine::RngStream;

/// Parameters of the cold-start model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdStartModel {
    /// Median sandbox provisioning time, ms.
    pub provision_ms: f64,
    /// Median runtime (Node.js) boot time, ms.
    pub runtime_boot_ms: f64,
    /// Lognormal shape of the fixed components.
    pub sigma: f64,
    /// Idle time after which a warm instance is reclaimed, ms.
    pub idle_ttl_ms: f64,
}

impl ColdStartModel {
    /// AWS-like defaults (sub-second cold starts for Node.js, ~10 minute
    /// idle reclamation).
    pub fn aws_like() -> Self {
        ColdStartModel {
            provision_ms: 140.0,
            runtime_boot_ms: 95.0,
            sigma: 0.25,
            idle_ttl_ms: 10.0 * 60.0 * 1000.0,
        }
    }

    /// Samples the initialization duration for a profile at a memory size.
    pub fn sample_init_ms(
        &self,
        profile: &ResourceProfile,
        memory: MemorySize,
        laws: &ScalingLaws,
        rng: &mut RngStream,
    ) -> f64 {
        let fixed = LogNormal::with_mean(self.provision_ms + self.runtime_boot_ms, self.sigma)
            // lint: allow(panic002) reason="mean and sigma are fixed positive model constants, so the distribution is valid"
            .expect("validated parameters")
            .sample(rng);
        let load_ms =
            profile.package_size_mb() / laws.io_bandwidth_mbps(memory) * 1000.0;
        let init_cpu_ms = profile.init_cpu_ms() / laws.cpu_speed(memory, 1.0);
        fixed + load_ms + init_cpu_ms
    }

    /// The expected initialization duration (noise-free).
    pub fn expected_init_ms(
        &self,
        profile: &ResourceProfile,
        memory: MemorySize,
        laws: &ScalingLaws,
    ) -> f64 {
        self.provision_ms
            + self.runtime_boot_ms
            + profile.package_size_mb() / laws.io_bandwidth_mbps(memory) * 1000.0
            + profile.init_cpu_ms() / laws.cpu_speed(memory, 1.0)
    }
}

impl Default for ColdStartModel {
    fn default() -> Self {
        Self::aws_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Stage;

    fn profile() -> ResourceProfile {
        ResourceProfile::builder("f")
            .stage(Stage::cpu("w", 10.0))
            .init_cpu_ms(120.0)
            .package_size_mb(8.0)
            .build()
    }

    #[test]
    fn cold_starts_shrink_with_memory() {
        let m = ColdStartModel::aws_like();
        let laws = ScalingLaws::aws_like();
        let p = profile();
        let small = m.expected_init_ms(&p, MemorySize::MB_128, &laws);
        let large = m.expected_init_ms(&p, MemorySize::MB_2048, &laws);
        assert!(small > large + 100.0, "{small} vs {large}");
    }

    #[test]
    fn sampled_init_is_near_expected() {
        let m = ColdStartModel::aws_like();
        let laws = ScalingLaws::aws_like();
        let p = profile();
        let mut rng = RngStream::from_seed(4, "cold");
        let n = 20_000;
        let avg: f64 = (0..n)
            .map(|_| m.sample_init_ms(&p, MemorySize::MB_512, &laws, &mut rng))
            .sum::<f64>()
            / n as f64;
        let expected = m.expected_init_ms(&p, MemorySize::MB_512, &laws);
        assert!((avg - expected).abs() / expected < 0.03, "avg={avg} exp={expected}");
    }

    #[test]
    fn bigger_packages_start_slower() {
        let m = ColdStartModel::aws_like();
        let laws = ScalingLaws::aws_like();
        let small_pkg = profile();
        let big_pkg = ResourceProfile::builder("g")
            .init_cpu_ms(120.0)
            .package_size_mb(50.0)
            .build();
        assert!(
            m.expected_init_ms(&big_pkg, MemorySize::MB_512, &laws)
                > m.expected_init_ms(&small_pkg, MemorySize::MB_512, &laws)
        );
    }

    #[test]
    fn idle_ttl_default_is_ten_minutes() {
        assert_eq!(ColdStartModel::aws_like().idle_ttl_ms, 600_000.0);
    }
}
